"""Durable-catalog behavior: persist/open round trips, the recovery
invariant (recovered answers == from-scratch build over the surviving
database), generation rolling, and tolerance of crash debris.

Process-kill crash injection lives in ``test_crash_recovery.py``; this file
covers the same recovery paths with surgically constructed on-disk states.
"""

from __future__ import annotations

import json

import pytest

from repro.core import GraphCatalog, ProbabilisticGraphDatabase
from repro.core.catalog import CURRENT_FILENAME
from repro.core.wal import WriteAheadLog, wal_filename
from repro.datasets import extract_query
from repro.exceptions import CatalogError
from tests.test_catalog_parity import (
    BOUND_CONFIG,
    DISTANCE_THRESHOLD,
    FEATURE_CONFIG,
    PROBABILITY_THRESHOLD,
    SEARCH_CONFIG,
    answer_tuples,
    apply_random_mutations,
    assert_result_parity,
    random_database,
    rebuild_from_scratch,
)

SEED = 20120901


def durable_catalog(tmp_path, seed=SEED, num_graphs=7, num_shards=1):
    database = random_database(seed, num_graphs=num_graphs)
    return (
        GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=seed,
            num_shards=num_shards,
            directory=tmp_path / "catalog",
        ),
        database.graphs,
    )


class TestPersistAndOpen:
    def test_build_with_directory_creates_the_layout(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path)
        root = tmp_path / "catalog"
        assert catalog.is_durable
        assert catalog.generation == 0
        assert catalog.wal_records == 0
        assert (root / CURRENT_FILENAME).exists()
        assert (root / "gen_00000000" / "catalog.json").exists()
        assert (root / wal_filename(0)).exists()
        catalog.close()

    def test_in_memory_catalog_is_not_durable(self):
        catalog = GraphCatalog.build(
            random_database(SEED, num_graphs=5).graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=SEED,
        )
        assert not catalog.is_durable
        assert catalog.durable_directory is None
        assert catalog.generation is None
        assert catalog.wal_records == 0

    def test_persist_refuses_an_already_durable_catalog(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path)
        with pytest.raises(CatalogError, match="already durable"):
            catalog.persist(tmp_path / "elsewhere")
        catalog.close()

    def test_persist_refuses_an_occupied_directory(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path)
        catalog.close()
        other = GraphCatalog.build(
            random_database(SEED + 1, num_graphs=5).graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=SEED,
        )
        with pytest.raises(CatalogError, match="already holds"):
            other.persist(tmp_path / "catalog")

    def test_open_requires_a_durable_directory(self, tmp_path):
        with pytest.raises(CatalogError, match="missing CURRENT"):
            GraphCatalog.open(tmp_path)

    def test_open_rejects_corrupt_current(self, tmp_path):
        (tmp_path / CURRENT_FILENAME).write_text("not json {{{")
        with pytest.raises(CatalogError, match="corrupt CURRENT"):
            GraphCatalog.open(tmp_path)

    def test_open_rejects_malformed_current(self, tmp_path):
        (tmp_path / CURRENT_FILENAME).write_text(json.dumps({"type": "other"}))
        with pytest.raises(CatalogError, match="malformed CURRENT"):
            GraphCatalog.open(tmp_path)

    def test_open_rejects_unknown_snapshot_version(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path)
        catalog.close()
        meta_path = tmp_path / "catalog" / "gen_00000000" / "catalog.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CatalogError, match="unsupported catalog snapshot"):
            GraphCatalog.open(tmp_path / "catalog")

    def test_to_catalog_with_directory(self, tmp_path):
        graphs = random_database(SEED, num_graphs=6).graphs
        engine = ProbabilisticGraphDatabase(graphs).build_index(
            feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=SEED
        )
        catalog = engine.to_catalog(directory=tmp_path / "adopted")
        assert catalog.is_durable
        catalog.add_graph(random_database(SEED + 1, num_graphs=1).graphs[0])
        catalog.close()
        reopened = GraphCatalog.open(tmp_path / "adopted")
        assert reopened.num_live == len(graphs) + 1
        reopened.close()


class TestRecoveryInvariant:
    """The tentpole contract: ``open()`` answers byte-identically to a
    from-scratch build over the surviving ``(id -> graph)`` database."""

    def test_reopen_after_mutations_matches_rebuild(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path, num_graphs=7)
        pool = random_database(SEED + 1000, num_graphs=8).graphs
        ops = apply_random_mutations(catalog, pool, SEED, num_ops=10)
        query = extract_query(catalog.live_items()[0][1].skeleton, 3, rng=SEED)
        catalog.close()

        recovered = GraphCatalog.open(tmp_path / "catalog")
        assert recovered.is_durable
        reference = rebuild_from_scratch(recovered)
        context = f"ops={ops}"
        assert_result_parity(
            recovered.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=SEED,
            ),
            reference.execute(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                SEARCH_CONFIG,
                rng=SEED,
            ),
            context,
        )
        assert_result_parity(
            recovered.query_top_k(
                query, 3, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=SEED
            ),
            reference.execute_top_k(
                query, 3, DISTANCE_THRESHOLD, SEARCH_CONFIG, rng=SEED
            ),
            context,
        )
        recovered.close()

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_sharded_reopen_matches_rebuild(self, tmp_path, num_shards):
        catalog, _ = durable_catalog(tmp_path, num_graphs=8, num_shards=num_shards)
        pool = random_database(SEED + 1000, num_graphs=8).graphs
        ops = apply_random_mutations(catalog, pool, SEED, num_ops=10)
        placement = {eid: catalog._live[eid] for eid in catalog.live_external_ids()}
        query = extract_query(catalog.live_items()[0][1].skeleton, 3, rng=SEED)
        catalog.close()

        recovered = GraphCatalog.open(tmp_path / "catalog")
        # replay reproduces smallest-shard routing decision for decision
        recovered_placement = {
            eid: recovered._live[eid] for eid in recovered.live_external_ids()
        }
        assert recovered_placement == placement, f"ops={ops}"
        reference = rebuild_from_scratch(recovered)
        assert_result_parity(
            recovered.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=SEED,
            ),
            reference.execute(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                SEARCH_CONFIG,
                rng=SEED,
            ),
            f"ops={ops}",
        )
        # sharded top-k merges per-shard partials whose work counters
        # legitimately differ from the sequential reference; answers must
        # still be byte-equal (the repo-wide sharding convention)
        assert answer_tuples(
            recovered.query_top_k(
                query, 3, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=SEED
            )
        ) == answer_tuples(
            reference.execute_top_k(
                query, 3, DISTANCE_THRESHOLD, SEARCH_CONFIG, rng=SEED
            )
        ), f"ops={ops}"
        recovered.close()

    def test_update_survives_as_one_atomic_record(self, tmp_path):
        catalog, graphs = durable_catalog(tmp_path, num_graphs=6)
        replacement = random_database(SEED + 1, num_graphs=1).graphs[0]
        catalog.update_graph(2, replacement)
        assert catalog.wal_records == 1  # not a remove + an add
        catalog.close()
        recovered = GraphCatalog.open(tmp_path / "catalog")
        assert recovered.num_live == len(graphs)
        assert sorted(recovered.live_external_ids()) == list(range(len(graphs)))
        recovered.close()

    def test_external_id_counter_survives_recovery(self, tmp_path):
        catalog, graphs = durable_catalog(tmp_path, num_graphs=6)
        added = catalog.add_graph(random_database(SEED + 1, num_graphs=1).graphs[0])
        catalog.remove_graph(added)  # the highest id is no longer live
        catalog.close()
        recovered = GraphCatalog.open(tmp_path / "catalog")
        fresh = recovered.add_graph(random_database(SEED + 2, num_graphs=1).graphs[0])
        assert fresh == added + 1  # ids are never silently reused
        recovered.close()


class TestGenerations:
    def test_compact_rolls_the_generation(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path)
        pool = random_database(SEED + 1000, num_graphs=2).graphs
        catalog.add_graph(pool[0])
        assert catalog.wal_records == 1
        catalog.compact()
        assert catalog.generation == 1
        assert catalog.wal_records == 0  # fresh log for the new generation
        root = tmp_path / "catalog"
        names = sorted(p.name for p in root.iterdir())
        assert names == [CURRENT_FILENAME, "gen_00000001", wal_filename(1)]
        catalog.close()

    def test_mutations_keep_working_after_a_roll(self, tmp_path):
        catalog, graphs = durable_catalog(tmp_path)
        pool = random_database(SEED + 1000, num_graphs=3).graphs
        catalog.add_graph(pool[0])
        catalog.compact()
        catalog.add_graph(pool[1])
        catalog.remove_graph(0)
        catalog.close()
        recovered = GraphCatalog.open(tmp_path / "catalog")
        assert recovered.generation == 1
        assert recovered.wal_records == 2
        assert recovered.num_live == len(graphs) + 1
        recovered.close()

    def test_uncommitted_generation_is_ignored_and_swept(self, tmp_path):
        """A crash after writing snapshot g+1 but before the CURRENT swap
        leaves generation g fully authoritative."""
        catalog, _ = durable_catalog(tmp_path)
        pool = random_database(SEED + 1000, num_graphs=1).graphs
        catalog.add_graph(pool[0])
        catalog.close()
        root = tmp_path / "catalog"
        # fake the crashed compaction: snapshot + wal exist, CURRENT still 0
        catalog._write_snapshot(root, 1)
        WriteAheadLog.create(root / wal_filename(1), 1).close()
        recovered = GraphCatalog.open(root)
        assert recovered.generation == 0
        assert recovered.wal_records == 1  # the add survived in the old log
        names = sorted(p.name for p in root.iterdir())
        assert names == [CURRENT_FILENAME, "gen_00000000", wal_filename(0)]
        recovered.close()

    def test_stale_tmp_files_are_swept_on_open(self, tmp_path):
        catalog, _ = durable_catalog(tmp_path)
        catalog.close()
        root = tmp_path / "catalog"
        debris = root / "gen_00000000" / "catalog.json.abc123.tmp"
        debris.write_text("half-written")
        recovered = GraphCatalog.open(root)
        assert not debris.exists()
        recovered.close()

    def test_torn_wal_tail_is_recovered_through(self, tmp_path):
        catalog, graphs = durable_catalog(tmp_path)
        pool = random_database(SEED + 1000, num_graphs=1).graphs
        catalog.add_graph(pool[0])
        catalog.close()
        wal_path = tmp_path / "catalog" / wal_filename(0)
        with open(wal_path, "ab") as handle:
            handle.write(b'deadbeef {"op":"remove","external_')
        recovered = GraphCatalog.open(tmp_path / "catalog")
        assert recovered.num_live == len(graphs) + 1  # the torn remove is gone
        recovered.close()
