"""Tests for embedding enumeration and disjointness."""

from __future__ import annotations

from repro.graphs import LabeledGraph
from repro.isomorphism import count_embeddings, find_embeddings
from repro.isomorphism.embeddings import Embedding, maximal_disjoint_embeddings


def build(vertex_labels, edges):
    return LabeledGraph.from_edges(vertex_labels, edges)


def single_edge(label_u="a", label_v="a", edge_label="x"):
    return build({0: label_u, 1: label_v}, [(0, 1, edge_label)])


class TestEnumeration:
    def test_embeddings_are_edge_sets_not_mappings(self):
        """Automorphic mappings of the pattern collapse to one embedding."""
        pattern = single_edge()
        target = single_edge()
        embeddings = find_embeddings(pattern, target)
        assert len(embeddings) == 1

    def test_triangle_target_has_three_edge_embeddings(self):
        pattern = single_edge()
        target = build(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )
        assert count_embeddings(pattern, target) == 3

    def test_path_pattern_in_square(self):
        pattern = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])
        square = build(
            {0: "a", 1: "a", 2: "a", 3: "a"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x"), (0, 3, "x")],
        )
        embeddings = find_embeddings(pattern, square)
        assert len(embeddings) == 4  # one 2-edge path per corner vertex
        assert all(e.size == 2 for e in embeddings)

    def test_no_embeddings_when_labels_differ(self):
        assert find_embeddings(single_edge("q", "q"), single_edge()) == []

    def test_empty_pattern_has_no_embeddings(self):
        assert find_embeddings(LabeledGraph(), single_edge()) == []

    def test_limit_truncates(self):
        pattern = single_edge()
        target = build(
            {i: "a" for i in range(6)},
            [(i, j, "x") for i in range(6) for j in range(i + 1, 6)],
        )
        assert len(find_embeddings(pattern, target, limit=5)) == 5

    def test_embedding_vertices_match_edges(self):
        pattern = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (1, 2, "y")])
        target = build(
            {7: "a", 8: "b", 9: "c"}, [(7, 8, "x"), (8, 9, "y")]
        )
        [embedding] = find_embeddings(pattern, target)
        assert embedding.vertices == frozenset({7, 8, 9})
        assert embedding.edges == frozenset({(7, 8), (8, 9)})


class TestDisjointness:
    def test_overlap_requires_shared_edge(self):
        e1 = Embedding(edges=frozenset({(0, 1)}), vertices=frozenset({0, 1}))
        e2 = Embedding(edges=frozenset({(1, 2)}), vertices=frozenset({1, 2}))
        # shared vertex but no shared edge: still edge-disjoint
        assert e1.is_edge_disjoint(e2)
        e3 = Embedding(edges=frozenset({(0, 1), (1, 2)}), vertices=frozenset({0, 1, 2}))
        assert e1.overlaps(e3)

    def test_maximal_disjoint_selection_is_pairwise_disjoint(self):
        # 2-edge path pattern in a square: 4 embeddings, at most 2 disjoint
        pattern = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])
        target = build(
            {0: "a", 1: "a", 2: "a", 3: "a"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x"), (0, 3, "x")],
        )
        embeddings = find_embeddings(pattern, target)
        disjoint = maximal_disjoint_embeddings(embeddings)
        assert len(disjoint) == 2
        for i, a in enumerate(disjoint):
            for b in disjoint[i + 1 :]:
                assert a.is_edge_disjoint(b)

    def test_maximal_disjoint_of_empty_list(self):
        assert maximal_disjoint_embeddings([]) == []
