"""Engine equivalence: the vectorized generic-join engine must agree with
the recursive VF2 reference — on random labeled graphs (hypothesis) and,
byte for byte, on full query answers and per-stage counters through the
sequential, sharded and top-k paths."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ProbabilisticGraphDatabase,
    SearchConfig,
    VerificationConfig,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.graphs import LabeledGraph
from repro.isomorphism import (
    find_embeddings,
    find_isomorphism_mapping,
    is_subgraph_isomorphic,
    using_engine,
)
from repro.pmi import BoundConfig, FeatureSelectionConfig

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

labels = st.sampled_from(["a", "b", "c"])
edge_labels = st.sampled_from(["x", "y"])


@st.composite
def small_labeled_graphs(draw, min_vertices=2, max_vertices=6):
    """Connected-ish random labeled graphs with at least one edge."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = LabeledGraph()
    for index in range(n):
        graph.add_vertex(index, draw(labels))
    for index in range(1, n):
        graph.add_edge(index - 1, index, draw(edge_labels))
    for u in range(n):
        for v in range(u + 2, n):
            if draw(st.booleans()):
                graph.add_edge(u, v, draw(edge_labels))
    return graph


@st.composite
def pattern_target_pairs(draw):
    """A random target plus a pattern induced on a vertex subset of it.

    Induced patterns guarantee a healthy fraction of positive instances;
    the independent-pattern tests below cover the negative direction.
    """
    target = draw(small_labeled_graphs(min_vertices=3))
    vertices = list(target.vertices())
    subset = [v for v in vertices if draw(st.booleans())] or vertices[:2]
    pattern = target.subgraph_by_vertices(subset)
    pattern.remove_isolated_vertices()
    if pattern.num_edges == 0:
        pattern = target.subgraph_by_vertices(vertices[:2])
    return pattern, target


def assert_valid_mapping(pattern, target, mapping, label_sensitive):
    assert set(mapping) == set(pattern.vertices())
    assert len(set(mapping.values())) == len(mapping)
    for u, v in pattern.edge_keys():
        assert target.has_edge(mapping[u], mapping[v])
        if label_sensitive:
            assert pattern.edge_label(u, v) == target.edge_label(mapping[u], mapping[v])
    if label_sensitive:
        for vertex in pattern.vertices():
            assert pattern.vertex_label(vertex) == target.vertex_label(mapping[vertex])


class TestRandomizedEquivalence:
    @SETTINGS
    @given(pattern_target_pairs(), st.booleans())
    def test_exists_agrees_on_induced_patterns(self, pair, label_sensitive):
        pattern, target = pair
        gj = is_subgraph_isomorphic(
            pattern, target, label_sensitive=label_sensitive, method="generic_join"
        )
        vf2 = is_subgraph_isomorphic(
            pattern, target, label_sensitive=label_sensitive, method="vf2"
        )
        assert gj == vf2
        assert gj  # an induced subgraph always embeds via the identity

    @SETTINGS
    @given(small_labeled_graphs(max_vertices=4), small_labeled_graphs(), st.booleans())
    def test_exists_agrees_on_independent_graphs(self, pattern, target, label_sensitive):
        gj = is_subgraph_isomorphic(
            pattern, target, label_sensitive=label_sensitive, method="generic_join"
        )
        vf2 = is_subgraph_isomorphic(
            pattern, target, label_sensitive=label_sensitive, method="vf2"
        )
        assert gj == vf2

    @SETTINGS
    @given(small_labeled_graphs(max_vertices=4), small_labeled_graphs(), st.booleans())
    def test_first_mapping_foundness_and_validity(self, pattern, target, label_sensitive):
        gj = find_isomorphism_mapping(
            pattern, target, label_sensitive=label_sensitive, method="generic_join"
        )
        vf2 = find_isomorphism_mapping(
            pattern, target, label_sensitive=label_sensitive, method="vf2"
        )
        assert (gj is None) == (vf2 is None)
        if gj is not None:
            assert_valid_mapping(pattern, target, gj, label_sensitive)
            assert_valid_mapping(pattern, target, vf2, label_sensitive)

    @SETTINGS
    @given(small_labeled_graphs(max_vertices=4), small_labeled_graphs(), st.booleans())
    def test_embeddings_are_byte_identical(self, pattern, target, label_sensitive):
        gj = find_embeddings(
            pattern, target, limit=None, label_sensitive=label_sensitive,
            method="generic_join",
        )
        vf2 = find_embeddings(
            pattern, target, limit=None, label_sensitive=label_sensitive, method="vf2"
        )
        assert gj == vf2  # same embeddings, same canonical order


# ----------------------------------------------------------------------
# full-pipeline byte parity
# ----------------------------------------------------------------------
PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1
FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12
)
# sampling on purpose: identical events must lead to identical draws
SAMPLING_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)
EXACT_CONFIG = SearchConfig(
    verification=VerificationConfig(method="inclusion_exclusion")
)


@pytest.fixture(scope="module")
def parity_dataset():
    config = PPIDatasetConfig(
        num_graphs=6,
        num_families=2,
        vertices_per_graph=9,
        edges_per_graph=11,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=31)


@pytest.fixture(scope="module")
def parity_workload(parity_dataset):
    return [
        extract_query(parity_dataset.graphs[i % 6].skeleton, 3, rng=400 + i)
        for i in range(3)
    ]


def build_database(dataset, engine, num_shards=None):
    with using_engine(engine):
        database = ProbabilisticGraphDatabase(dataset.graphs)
        kwargs = {} if num_shards is None else {"num_shards": num_shards, "max_workers": 0}
        database.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=17,
            **kwargs,
        )
    return database


def answer_tuples(result):
    return [(a.graph_id, a.graph_name, a.probability, a.decided_by) for a in result.answers]


def counter_dict(result) -> dict:
    full = result.statistics.as_dict()
    return {key: value for key, value in full.items() if not key.endswith("_seconds")}


def run_queries(database, engine, workload, config):
    """(answers, counters) per query, executed under the given engine."""
    with using_engine(engine):
        results = database.query_many(
            workload,
            PROBABILITY_THRESHOLD,
            DISTANCE_THRESHOLD,
            config=config,
            rng=17,
        )
    return [(answer_tuples(r), counter_dict(r)) for r in results]


def run_top_k(database, engine, workload, config):
    with using_engine(engine):
        results = [
            database.query_top_k(
                query, 3, DISTANCE_THRESHOLD, config=config, rng=17
            )
            for query in workload
        ]
    return [(answer_tuples(r), counter_dict(r)) for r in results]


class TestPipelineByteParity:
    """Every answer, SSP estimate and per-stage counter must be identical
    whichever engine did the matching — index build included."""

    @pytest.mark.parametrize("config", [SAMPLING_CONFIG, EXACT_CONFIG], ids=["smp", "exact"])
    def test_threshold_queries(self, parity_dataset, parity_workload, config):
        gj = build_database(parity_dataset, "generic_join")
        vf2 = build_database(parity_dataset, "vf2")
        assert run_queries(gj, "generic_join", parity_workload, config) == run_queries(
            vf2, "vf2", parity_workload, config
        )

    def test_top_k_queries(self, parity_dataset, parity_workload):
        gj = build_database(parity_dataset, "generic_join")
        vf2 = build_database(parity_dataset, "vf2")
        assert run_top_k(gj, "generic_join", parity_workload, SAMPLING_CONFIG) == run_top_k(
            vf2, "vf2", parity_workload, SAMPLING_CONFIG
        )

    def test_sharded_queries(self, parity_dataset, parity_workload):
        gj = build_database(parity_dataset, "generic_join", num_shards=2)
        vf2 = build_database(parity_dataset, "vf2", num_shards=2)
        assert run_queries(
            gj, "generic_join", parity_workload, SAMPLING_CONFIG
        ) == run_queries(vf2, "vf2", parity_workload, SAMPLING_CONFIG)
