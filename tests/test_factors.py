"""Unit tests for the discrete factor algebra."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import FactorError
from repro.probability import Factor


class TestConstruction:
    def test_basic_table(self):
        factor = Factor(("x",), {(0,): 0.3, (1,): 0.7})
        assert factor.total() == pytest.approx(1.0)
        assert factor.is_normalized()

    def test_bernoulli(self):
        factor = Factor.from_bernoulli("x", 0.25)
        assert factor.value({"x": 1}) == pytest.approx(0.25)
        assert factor.value({"x": 0}) == pytest.approx(0.75)

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(FactorError):
            Factor.from_bernoulli("x", 1.5)

    def test_unit_factor(self):
        unit = Factor.unit()
        assert unit.total() == pytest.approx(1.0)
        other = Factor.from_bernoulli("x", 0.4)
        assert (unit * other) == other

    def test_full_table_ordering(self):
        factor = Factor.full_table(("a", "b"), [0.1, 0.2, 0.3, 0.4])
        assert factor.value({"a": 0, "b": 0}) == pytest.approx(0.1)
        assert factor.value({"a": 1, "b": 1}) == pytest.approx(0.4)

    def test_full_table_wrong_length(self):
        with pytest.raises(FactorError):
            Factor.full_table(("a", "b"), [0.1, 0.2])

    def test_rejects_duplicates_and_bad_values(self):
        with pytest.raises(FactorError):
            Factor(("x", "x"), {(0, 0): 1.0})
        with pytest.raises(FactorError):
            Factor(("x",), {(0,): -0.1})
        with pytest.raises(FactorError):
            Factor(("x",), {(2,): 0.5})
        with pytest.raises(FactorError):
            Factor(("x",), {(0, 1): 0.5})


class TestAlgebra:
    def test_multiply_independent(self):
        fa = Factor.from_bernoulli("a", 0.5)
        fb = Factor.from_bernoulli("b", 0.25)
        product = fa * fb
        assert set(product.variables) == {"a", "b"}
        assert product.value({"a": 1, "b": 1}) == pytest.approx(0.125)
        assert product.total() == pytest.approx(1.0)

    def test_multiply_shared_variable_joins(self):
        f1 = Factor(("a", "b"), {(1, 1): 0.5, (0, 1): 0.5})
        f2 = Factor(("b", "c"), {(1, 1): 0.4, (1, 0): 0.6})
        product = f1 * f2
        # b must agree across both factors
        assert product.value({"a": 1, "b": 1, "c": 1}) == pytest.approx(0.2)
        assert product.value({"a": 1, "b": 0, "c": 1}) == pytest.approx(0.0)

    def test_marginalize(self):
        factor = Factor.full_table(("a", "b"), [0.1, 0.2, 0.3, 0.4])
        marginal = factor.marginalize(["b"])
        assert marginal.value({"a": 0}) == pytest.approx(0.3)
        assert marginal.value({"a": 1}) == pytest.approx(0.7)

    def test_marginalize_unknown_variable(self):
        factor = Factor.from_bernoulli("a", 0.5)
        with pytest.raises(FactorError):
            factor.marginalize(["z"])

    def test_condition_slices_without_renormalizing(self):
        factor = Factor.full_table(("a", "b"), [0.1, 0.2, 0.3, 0.4])
        sliced = factor.condition({"a": 1})
        assert sliced.variables == ("b",)
        assert sliced.value({"b": 0}) == pytest.approx(0.3)
        assert sliced.total() == pytest.approx(0.7)

    def test_condition_on_absent_variable_is_noop(self):
        factor = Factor.from_bernoulli("a", 0.5)
        assert factor.condition({"z": 1}) == factor

    def test_normalize(self):
        factor = Factor(("x",), {(0,): 2.0, (1,): 6.0})
        normalized = factor.normalize()
        assert normalized.value({"x": 1}) == pytest.approx(0.75)

    def test_normalize_zero_mass_raises(self):
        # zero-valued entries are dropped at construction, leaving no mass
        factor = Factor(("x",), {(0,): 0.0})
        with pytest.raises(FactorError):
            factor.normalize()

    def test_marginal_probability(self):
        factor = Factor.full_table(("a", "b"), [0.1, 0.2, 0.3, 0.4])
        assert factor.marginal_probability("a", 1) == pytest.approx(0.7)
        assert factor.marginal_probability("b", 0) == pytest.approx(0.4)

    def test_product_then_marginalize_matches_direct(self):
        fa = Factor.from_bernoulli("a", 0.3)
        fb = Factor.from_bernoulli("b", 0.9)
        joint = fa * fb
        assert joint.marginalize(["b"]) == fa
        assert joint.marginalize(["a"]) == fb


class TestSampling:
    def test_sample_respects_distribution(self):
        rng = random.Random(3)
        factor = Factor.from_bernoulli("x", 0.8)
        draws = [factor.sample(rng)["x"] for _ in range(2000)]
        assert 0.74 < sum(draws) / len(draws) < 0.86

    def test_sample_zero_mass_raises(self):
        factor = Factor(("x",), {(1,): 0.0})
        with pytest.raises(FactorError):
            factor.sample(random.Random(1))


class TestEquality:
    def test_equality_is_variable_order_independent(self):
        f1 = Factor(("a", "b"), {(1, 0): 0.5, (0, 1): 0.5})
        f2 = Factor(("b", "a"), {(0, 1): 0.5, (1, 0): 0.5})
        assert f1 == f2

    def test_factors_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Factor.unit())
