"""Tests for feature mining and selection (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.graphs.canonical import canonical_form
from repro.isomorphism import is_subgraph_isomorphic
from repro.pmi import FeatureMiner, FeatureSelectionConfig


@pytest.fixture(scope="module")
def mined_features(small_ppi_database):
    config = FeatureSelectionConfig(
        alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=20
    )
    return FeatureMiner(config).mine(small_ppi_database.graphs), small_ppi_database


class TestMining:
    def test_some_features_are_found(self, mined_features):
        features, _ = mined_features
        assert len(features) > 0

    def test_feature_ids_are_unique_and_sequential(self, mined_features):
        features, _ = mined_features
        ids = [f.feature_id for f in features]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_features_respect_size_limit(self, mined_features):
        features, _ = mined_features
        assert all(f.num_vertices <= 3 for f in features)

    def test_features_are_pairwise_non_isomorphic(self, mined_features):
        features, _ = mined_features
        forms = [canonical_form(f.graph) for f in features]
        assert len(forms) == len(set(forms))
        assert all(f.canonical == form for f, form in zip(features, forms))

    def test_support_lists_actually_contain_the_feature(self, mined_features):
        features, database = mined_features
        for feature in features[:5]:
            for graph_id in list(feature.support)[:3]:
                skeleton = database.graphs[graph_id].skeleton
                assert is_subgraph_isomorphic(feature.graph, skeleton)

    def test_frequency_threshold_respected(self, mined_features):
        features, database = mined_features
        # qualified support is a subset of support, so support must already
        # reach the beta fraction of the database
        for feature in features:
            assert len(feature.support) / len(database.graphs) >= 0.2 - 1e-9

    def test_max_features_cap(self, small_ppi_database):
        config = FeatureSelectionConfig(max_vertices=3, max_features=3, beta=0.1)
        features = FeatureMiner(config).mine(small_ppi_database.graphs)
        assert len(features) <= 3

    def test_empty_database(self):
        assert FeatureMiner().mine([]) == []

    def test_higher_beta_gives_fewer_features(self, small_ppi_database):
        low = FeatureMiner(
            FeatureSelectionConfig(beta=0.1, max_vertices=3, max_features=50)
        ).mine(small_ppi_database.graphs)
        high = FeatureMiner(
            FeatureSelectionConfig(beta=0.9, max_vertices=3, max_features=50)
        ).mine(small_ppi_database.graphs)
        assert len(high) <= len(low)

    def test_repr_contains_key_facts(self, mined_features):
        features, _ = mined_features
        text = repr(features[0])
        assert "Feature" in text and "support" in text
