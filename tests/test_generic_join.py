"""Unit tests for the vectorized generic-join matching engine: the matcher
API, block entry points, compiled-structure caching against the graph
mutation counter, the overflow fallback to VF2, truncation reporting and
the engine registry."""

from __future__ import annotations

import os

import pytest

from repro.graphs import LabeledGraph
from repro.isomorphism import (
    GenericJoinMatcher,
    GenericJoinOverflow,
    VF2Matcher,
    compile_edge_table,
    compile_join_plan,
    count_embeddings_block,
    enumerate_embeddings,
    find_embeddings,
    find_embeddings_block,
    get_default_engine,
    match_block,
    set_default_engine,
    using_engine,
)
from repro.isomorphism import generic_join
from repro.isomorphism.embeddings import reset_truncation_count, truncation_count


def build(vertex_labels, edges):
    return LabeledGraph.from_edges(vertex_labels, edges)


def assert_valid_mapping(pattern, target, mapping, label_sensitive=True):
    """The monomorphism contract of Definition 5, checked directly."""
    assert set(mapping) == set(pattern.vertices())
    assert len(set(mapping.values())) == len(mapping)  # injective
    for u, v in pattern.edge_keys():
        assert target.has_edge(mapping[u], mapping[v])
        if label_sensitive:
            assert pattern.edge_label(u, v) == target.edge_label(mapping[u], mapping[v])
    if label_sensitive:
        for vertex in pattern.vertices():
            assert pattern.vertex_label(vertex) == target.vertex_label(mapping[vertex])


@pytest.fixture
def triangle_target():
    return build(
        {0: "a", 1: "a", 2: "b", 3: "b"},
        [(0, 1, "x"), (0, 2, "x"), (1, 2, "x"), (2, 3, "y")],
    )


class TestGenericJoinMatcher:
    def test_single_edge_exists(self, triangle_target):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert GenericJoinMatcher(pattern, triangle_target).exists()

    def test_vertex_label_mismatch(self, triangle_target):
        pattern = build({0: "a", 1: "z"}, [(0, 1, "x")])
        assert not GenericJoinMatcher(pattern, triangle_target).exists()

    def test_edge_label_mismatch(self, triangle_target):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "y")])
        assert not GenericJoinMatcher(pattern, triangle_target).exists()

    def test_label_insensitive_ignores_labels(self, triangle_target):
        pattern = build({0: "p", 1: "q"}, [(0, 1, "zzz")])
        assert not GenericJoinMatcher(pattern, triangle_target).exists()
        assert GenericJoinMatcher(pattern, triangle_target, label_sensitive=False).exists()

    def test_triangle_in_triangle(self, triangle_target):
        pattern = build({0: "a", 1: "a", 2: "b"}, [(0, 1, "x"), (0, 2, "x"), (1, 2, "x")])
        matcher = GenericJoinMatcher(pattern, triangle_target)
        assert matcher.exists()
        mapping = matcher.first_mapping()
        assert_valid_mapping(pattern, triangle_target, mapping)

    def test_triangle_not_in_path(self):
        triangle = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")])
        path = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])
        assert not GenericJoinMatcher(triangle, path).exists()
        assert GenericJoinMatcher(triangle, path).first_mapping() is None

    def test_non_induced_semantics(self):
        path = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])
        triangle = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")])
        assert GenericJoinMatcher(path, triangle).exists()

    def test_disconnected_pattern(self, triangle_target):
        pattern = build({0: "a", 1: "a", 2: "b", 3: "b"}, [(0, 1, "x"), (2, 3, "y")])
        mapping = GenericJoinMatcher(pattern, triangle_target).first_mapping()
        assert_valid_mapping(pattern, triangle_target, mapping)

    def test_all_mappings_match_vf2(self, triangle_target):
        pattern = build({0: "a", 1: "a", 2: "b"}, [(0, 1, "x"), (0, 2, "x"), (1, 2, "x")])
        gj = GenericJoinMatcher(pattern, triangle_target).all_mappings()
        vf2 = VF2Matcher(pattern, triangle_target).all_mappings()
        key = lambda m: sorted(m.items(), key=repr)
        assert sorted(gj, key=key) == sorted(vf2, key=key)
        for mapping in gj:
            assert_valid_mapping(pattern, triangle_target, mapping)

    def test_all_mappings_limit(self, triangle_target):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert len(GenericJoinMatcher(pattern, triangle_target).all_mappings(limit=1)) == 1

    def test_missing_label_in_target(self, triangle_target):
        pattern = build({0: "zzz"}, [])
        assert not GenericJoinMatcher(pattern, triangle_target).exists()


class TestBlockAPIs:
    def test_match_block(self, triangle_target):
        pattern = build({0: "a", 1: "a", 2: "b"}, [(0, 1, "x"), (0, 2, "x"), (1, 2, "x")])
        path_only = build({0: "a", 1: "a", 2: "b"}, [(0, 1, "x"), (0, 2, "x")])
        targets = [triangle_target, path_only, build({0: "c"}, [])]
        assert match_block(pattern, targets) == [True, False, False]
        assert match_block(pattern, targets, method="vf2") == [True, False, False]

    def test_match_block_empty_pattern(self, triangle_target):
        assert match_block(LabeledGraph(), [triangle_target, LabeledGraph()]) == [True, True]

    def test_find_embeddings_block_matches_sequential(self, triangle_target):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        targets = [triangle_target, build({0: "a", 1: "b"}, [(0, 1, "x")])]
        block = find_embeddings_block(pattern, targets, limit=None)
        assert block == [find_embeddings(pattern, t, limit=None) for t in targets]

    def test_count_embeddings_block(self, triangle_target):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        counts = count_embeddings_block(pattern, [triangle_target], limit=None)
        # two "a" vertices each adjacent to the "b" vertex 2 via an "x" edge
        assert counts == [2]


class TestTruncation:
    @pytest.fixture
    def star(self):
        """One 'a' hub with five 'b' spokes: 5 distinct single-edge embeddings."""
        labels = {0: "a", **{i: "b" for i in range(1, 6)}}
        return build(labels, [(0, i, "x") for i in range(1, 6)])

    @pytest.mark.parametrize("engine", ["generic_join", "vf2"])
    def test_truncated_flag_and_counter(self, star, engine):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        with using_engine(engine):
            reset_truncation_count()
            full = enumerate_embeddings(pattern, star, limit=None)
            assert len(full.embeddings) == 5
            assert not full.truncated
            assert truncation_count() == 0

            capped = enumerate_embeddings(pattern, star, limit=3)
            assert len(capped.embeddings) == 3
            assert capped.truncated
            assert truncation_count() == 1

            # a limit exactly at the number of distinct embeddings is not truncation
            exact = enumerate_embeddings(pattern, star, limit=5)
            assert len(exact.embeddings) == 5
            assert not exact.truncated
            assert truncation_count() == 1
        reset_truncation_count()

    def test_edgeless_pattern_has_no_embeddings(self, star):
        result = enumerate_embeddings(build({0: "a"}, []), star)
        assert result.embeddings == [] and not result.truncated


class TestCompiledStructureCaching:
    def test_edge_table_cached_until_mutation(self):
        graph = build({0: "a", 1: "b"}, [(0, 1, "x")])
        table = compile_edge_table(graph)
        assert compile_edge_table(graph) is table
        graph.add_vertex(2, "c")
        rebuilt = compile_edge_table(graph)
        assert rebuilt is not table
        assert rebuilt.num_vertices == 3

    def test_every_mutator_bumps_version(self):
        graph = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (1, 2, "x")])
        version = graph.mutation_version
        graph.add_vertex(3, "d")
        graph.add_edge(2, 3, "y")
        graph.remove_edge(2, 3)
        graph.remove_vertex(3)
        assert graph.mutation_version == version + 4
        # no isolated vertices: a no-op sweep must not invalidate caches
        table = compile_edge_table(graph)
        graph.remove_isolated_vertices()
        assert compile_edge_table(graph) is table

    def test_join_plan_cached_per_label_mode(self):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        sensitive = compile_join_plan(pattern, label_sensitive=True)
        insensitive = compile_join_plan(pattern, label_sensitive=False)
        assert sensitive is not insensitive
        assert compile_join_plan(pattern, label_sensitive=True) is sensitive
        pattern.add_vertex(2, "c")
        assert compile_join_plan(pattern, label_sensitive=True) is not sensitive

    def test_copy_does_not_share_cache(self):
        graph = build({0: "a", 1: "b"}, [(0, 1, "x")])
        table = compile_edge_table(graph)
        clone = graph.copy()
        assert compile_edge_table(clone) is not table

    def test_cached_result_reflects_mutation(self):
        """The end-to-end regression: answers must track graph edits."""
        pattern = build({0: "a", 1: "a"}, [(0, 1, "x")])
        target = build({0: "a", 1: "a"}, [])
        assert not GenericJoinMatcher(pattern, target).exists()
        target.add_edge(0, 1, "x")
        assert GenericJoinMatcher(pattern, target).exists()
        target.remove_edge(0, 1)
        assert not GenericJoinMatcher(pattern, target).exists()


class TestOverflowFallback:
    def test_overflow_falls_back_to_vf2(self, monkeypatch, triangle_target):
        pattern = build({0: "a", 1: "a", 2: "b"}, [(0, 1, "x"), (0, 2, "x"), (1, 2, "x")])
        expected_exists = GenericJoinMatcher(pattern, triangle_target).exists()
        expected = find_embeddings(pattern, triangle_target, limit=None, method="vf2")
        monkeypatch.setattr(generic_join, "_MAX_OPEN_BRANCHES", 1)
        with pytest.raises(GenericJoinOverflow):
            generic_join.execute_join_plan(
                compile_join_plan(pattern), compile_edge_table(triangle_target)
            )
        # the public APIs silently reroute the overflowing pair through VF2
        assert GenericJoinMatcher(pattern, triangle_target).exists() == expected_exists
        mapping = GenericJoinMatcher(pattern, triangle_target).first_mapping()
        assert_valid_mapping(pattern, triangle_target, mapping)
        with using_engine("generic_join"):
            assert find_embeddings(pattern, triangle_target, limit=None) == expected


class TestEngineRegistry:
    def test_default_engine_is_generic_join(self):
        assert get_default_engine() == "generic_join"

    def test_resolve(self):
        assert generic_join.resolve_engine(None) == get_default_engine()
        assert generic_join.resolve_engine("vf2") == "vf2"
        assert generic_join.resolve_engine("generic_join") == "generic_join"
        with pytest.raises(ValueError):
            generic_join.resolve_engine("simd")

    def test_set_default_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_engine("nope")

    def test_using_engine_restores_previous(self):
        before = get_default_engine()
        with using_engine("vf2"):
            assert get_default_engine() == "vf2"
            with using_engine("generic_join"):
                assert get_default_engine() == "generic_join"
            assert get_default_engine() == "vf2"
        assert get_default_engine() == before

    def test_env_var_mirrors_engine(self):
        """Pool workers inherit the engine through the environment."""
        before = get_default_engine()
        try:
            set_default_engine("vf2")
            assert os.environ.get("REPRO_MATCH_ENGINE") == "vf2"
            set_default_engine("generic_join")
            assert os.environ.get("REPRO_MATCH_ENGINE") == "generic_join"
        finally:
            set_default_engine(before)

    def test_method_override_beats_default(self, triangle_target):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        with using_engine("vf2"):
            gj = find_embeddings(pattern, triangle_target, method="generic_join")
        with using_engine("generic_join"):
            vf2 = find_embeddings(pattern, triangle_target, method="vf2")
        assert gj == vf2
