"""Tests for graph serialization and the generic random generators."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    LabeledGraph,
    attach_independent_probabilities,
    io,
    random_connected_labeled_graph,
    random_labeled_graph,
)
from repro.graphs.possible_worlds import enumerate_possible_worlds


class TestLabeledGraphIO:
    def test_round_trip(self, tmp_path):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "y")], name="toy"
        )
        payload = io.labeled_graph_to_dict(graph)
        rebuilt = io.labeled_graph_from_dict(payload)
        assert rebuilt == graph
        assert rebuilt.name == "toy"

    def test_wrong_payload_type(self):
        with pytest.raises(GraphError):
            io.labeled_graph_from_dict({"type": "something-else"})

    def test_collection_round_trip(self, tmp_path):
        graphs = [
            LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")], name=f"g{i}")
            for i in range(3)
        ]
        path = tmp_path / "queries.json"
        io.save_labeled_graphs(graphs, path)
        loaded = io.load_labeled_graphs(path)
        assert loaded == graphs


class TestProbabilisticGraphIO:
    def test_round_trip_preserves_distribution(self, triangle_graph_001, tmp_path):
        payload = io.probabilistic_graph_to_dict(triangle_graph_001)
        rebuilt = io.probabilistic_graph_from_dict(payload)
        assert rebuilt.skeleton == triangle_graph_001.skeleton
        original_worlds = {
            w.present_edges(): w.probability for w in enumerate_possible_worlds(triangle_graph_001)
        }
        rebuilt_worlds = {
            w.present_edges(): w.probability for w in enumerate_possible_worlds(rebuilt)
        }
        assert set(original_worlds) == set(rebuilt_worlds)
        for key, value in original_worlds.items():
            assert rebuilt_worlds[key] == pytest.approx(value)

    def test_database_round_trip(self, triangle_graph_001, overlap_graph_002, tmp_path):
        path = tmp_path / "db.json"
        io.save_database([triangle_graph_001, overlap_graph_002], path)
        loaded = io.load_database(path)
        assert len(loaded) == 2
        assert loaded[0].skeleton == triangle_graph_001.skeleton
        assert loaded[1].skeleton == overlap_graph_002.skeleton

    def test_wrong_database_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"type": "nope"}')
        with pytest.raises(GraphError):
            io.load_database(path)

    def test_save_load_is_the_identity(self, triangle_graph_001, tmp_path):
        """Reserializing a loaded graph must reproduce the stored bytes.

        Regression test: load used to renormalize every factor table by its
        float total (1.0 ± ulp), so each save/load cycle drifted the
        distribution by 1 ulp and repeated snapshot/recovery cycles never
        converged on a fixed point.
        """
        first = io.probabilistic_graph_to_dict(triangle_graph_001)
        second = io.probabilistic_graph_to_dict(io.probabilistic_graph_from_dict(first))
        assert first == second

    def test_denormalized_table_is_rescaled_on_load(self, triangle_graph_001):
        payload = io.probabilistic_graph_to_dict(triangle_graph_001)
        for row in payload["factors"][0]["table"]:
            row[1] *= 3.0
        rebuilt = io.probabilistic_graph_from_dict(payload)
        assert rebuilt.factors[0].jpt.total() == pytest.approx(1.0)


class TestFormatVersioning:
    """Unknown ``version`` stamps must fail loudly, not deserialize garbage."""

    def test_load_database_rejects_unknown_version(self, triangle_graph_001, tmp_path):
        path = tmp_path / "db.json"
        io.save_database([triangle_graph_001], path)
        payload = json.loads(path.read_text())
        payload["version"] = io.FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError, match="unsupported .* format version"):
            io.load_database(path)

    def test_load_database_rejects_missing_version(self, triangle_graph_001, tmp_path):
        path = tmp_path / "db.json"
        io.save_database([triangle_graph_001], path)
        payload = json.loads(path.read_text())
        del payload["version"]
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError, match="unsupported .* format version"):
            io.load_database(path)

    def test_load_labeled_graphs_rejects_unknown_version(self, tmp_path):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")], name="g")
        path = tmp_path / "queries.json"
        io.save_labeled_graphs([graph], path)
        payload = json.loads(path.read_text())
        payload["version"] = io.FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(GraphError, match="unsupported .* format version"):
            io.load_labeled_graphs(path)

    def test_nested_graph_dict_rejects_inconsistent_version(self, triangle_graph_001):
        payload = io.probabilistic_graph_to_dict(triangle_graph_001)
        payload["version"] = io.FORMAT_VERSION + 1
        with pytest.raises(GraphError, match="unsupported .* format version"):
            io.probabilistic_graph_from_dict(payload)

    def test_nested_graph_dict_tolerates_absent_version(self, triangle_graph_001):
        # hand-built dicts without a stamp must keep loading (compatibility)
        payload = io.probabilistic_graph_to_dict(triangle_graph_001)
        del payload["version"]
        rebuilt = io.probabilistic_graph_from_dict(payload)
        assert rebuilt.skeleton == triangle_graph_001.skeleton


class TestRandomGenerators:
    def test_random_labeled_graph_shape(self, rng):
        graph = random_labeled_graph(10, 15, rng=rng)
        assert graph.num_vertices == 10
        assert graph.num_edges == 15

    def test_random_labeled_graph_clamps_edges(self, rng):
        graph = random_labeled_graph(4, 100, rng=rng)
        assert graph.num_edges == 6  # complete graph on 4 vertices

    def test_connected_generator_is_connected(self, rng):
        for _ in range(5):
            graph = random_connected_labeled_graph(12, 15, rng=rng)
            assert graph.is_connected()
            assert graph.num_vertices == 12
            assert graph.num_edges >= 11

    def test_connected_generator_single_vertex(self, rng):
        graph = random_connected_labeled_graph(1, 0, rng=rng)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_connected_generator_rejects_zero_vertices(self, rng):
        with pytest.raises(ValueError):
            random_connected_labeled_graph(0, 0, rng=rng)

    def test_attach_probabilities(self, rng):
        skeleton = random_connected_labeled_graph(10, 14, rng=rng)
        graph = attach_independent_probabilities(skeleton, mean_probability=0.5, rng=rng)
        assert graph.num_edges == skeleton.num_edges
        assert 0.05 <= graph.average_edge_probability() <= 0.95
        for factor in graph.factors:
            assert factor.jpt.is_normalized()
