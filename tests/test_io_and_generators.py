"""Tests for graph serialization and the generic random generators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    LabeledGraph,
    attach_independent_probabilities,
    io,
    random_connected_labeled_graph,
    random_labeled_graph,
)
from repro.graphs.possible_worlds import enumerate_possible_worlds


class TestLabeledGraphIO:
    def test_round_trip(self, tmp_path):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "y")], name="toy"
        )
        payload = io.labeled_graph_to_dict(graph)
        rebuilt = io.labeled_graph_from_dict(payload)
        assert rebuilt == graph
        assert rebuilt.name == "toy"

    def test_wrong_payload_type(self):
        with pytest.raises(GraphError):
            io.labeled_graph_from_dict({"type": "something-else"})

    def test_collection_round_trip(self, tmp_path):
        graphs = [
            LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")], name=f"g{i}")
            for i in range(3)
        ]
        path = tmp_path / "queries.json"
        io.save_labeled_graphs(graphs, path)
        loaded = io.load_labeled_graphs(path)
        assert loaded == graphs


class TestProbabilisticGraphIO:
    def test_round_trip_preserves_distribution(self, triangle_graph_001, tmp_path):
        payload = io.probabilistic_graph_to_dict(triangle_graph_001)
        rebuilt = io.probabilistic_graph_from_dict(payload)
        assert rebuilt.skeleton == triangle_graph_001.skeleton
        original_worlds = {
            w.present_edges(): w.probability for w in enumerate_possible_worlds(triangle_graph_001)
        }
        rebuilt_worlds = {
            w.present_edges(): w.probability for w in enumerate_possible_worlds(rebuilt)
        }
        assert set(original_worlds) == set(rebuilt_worlds)
        for key, value in original_worlds.items():
            assert rebuilt_worlds[key] == pytest.approx(value)

    def test_database_round_trip(self, triangle_graph_001, overlap_graph_002, tmp_path):
        path = tmp_path / "db.json"
        io.save_database([triangle_graph_001, overlap_graph_002], path)
        loaded = io.load_database(path)
        assert len(loaded) == 2
        assert loaded[0].skeleton == triangle_graph_001.skeleton
        assert loaded[1].skeleton == overlap_graph_002.skeleton

    def test_wrong_database_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"type": "nope"}')
        with pytest.raises(GraphError):
            io.load_database(path)


class TestRandomGenerators:
    def test_random_labeled_graph_shape(self, rng):
        graph = random_labeled_graph(10, 15, rng=rng)
        assert graph.num_vertices == 10
        assert graph.num_edges == 15

    def test_random_labeled_graph_clamps_edges(self, rng):
        graph = random_labeled_graph(4, 100, rng=rng)
        assert graph.num_edges == 6  # complete graph on 4 vertices

    def test_connected_generator_is_connected(self, rng):
        for _ in range(5):
            graph = random_connected_labeled_graph(12, 15, rng=rng)
            assert graph.is_connected()
            assert graph.num_vertices == 12
            assert graph.num_edges >= 11

    def test_connected_generator_single_vertex(self, rng):
        graph = random_connected_labeled_graph(1, 0, rng=rng)
        assert graph.num_vertices == 1
        assert graph.num_edges == 0

    def test_connected_generator_rejects_zero_vertices(self, rng):
        with pytest.raises(ValueError):
            random_connected_labeled_graph(0, 0, rng=rng)

    def test_attach_probabilities(self, rng):
        skeleton = random_connected_labeled_graph(10, 14, rng=rng)
        graph = attach_independent_probabilities(skeleton, mean_probability=0.5, rng=rng)
        assert graph.num_edges == skeleton.num_edges
        assert 0.05 <= graph.average_edge_probability() <= 0.95
        for factor in graph.factors:
            assert factor.jpt.is_normalized()
