"""Unit tests for joint probability tables (correlated and independent)."""

from __future__ import annotations

import pytest

from repro.exceptions import ProbabilityError
from repro.probability import Factor, JointProbabilityTable


class TestValidation:
    def test_must_sum_to_one(self):
        with pytest.raises(ProbabilityError):
            JointProbabilityTable(("x",), {(0,): 0.3, (1,): 0.3})

    def test_normalize_flag_rescales(self):
        jpt = JointProbabilityTable(("x",), {(0,): 1.0, (1,): 3.0}, normalize=True)
        assert jpt.value({"x": 1}) == pytest.approx(0.75)

    def test_zero_mass_rejected(self):
        with pytest.raises(ProbabilityError):
            JointProbabilityTable(("x",), {(0,): 0.0}, normalize=True)

    def test_from_factor(self):
        factor = Factor(("x",), {(0,): 2.0, (1,): 2.0})
        jpt = JointProbabilityTable.from_factor(factor)
        assert jpt.is_normalized()


class TestIndependentConstruction:
    def test_marginals_preserved(self):
        jpt = JointProbabilityTable.from_independent_marginals({"a": 0.2, "b": 0.9})
        assert jpt.edge_marginal("a") == pytest.approx(0.2)
        assert jpt.edge_marginal("b") == pytest.approx(0.9)
        assert jpt.is_normalized()

    def test_joint_value_is_product(self):
        jpt = JointProbabilityTable.from_independent_marginals({"a": 0.5, "b": 0.5})
        assert jpt.value({"a": 1, "b": 0}) == pytest.approx(0.25)

    def test_rejects_bad_marginal(self):
        with pytest.raises(ProbabilityError):
            JointProbabilityTable.from_independent_marginals({"a": 1.4})


class TestMaxDominanceConstruction:
    def test_table_is_normalized(self):
        jpt = JointProbabilityTable.from_max_dominance({"a": 0.6, "b": 0.3, "c": 0.8})
        assert jpt.is_normalized()

    def test_single_edge_reduces_to_bernoulli(self):
        jpt = JointProbabilityTable.from_max_dominance({"a": 0.7})
        assert jpt.edge_marginal("a") == pytest.approx(0.7)

    def test_assignments_weighted_by_strongest_member(self):
        # With p(a)=0.9 and p(b)=0.5 every assignment containing a=1 gets raw
        # weight at least 0.9, so worlds where the strong edge is present
        # dominate the normalized table.
        jpt = JointProbabilityTable.from_max_dominance({"a": 0.9, "b": 0.5})
        present = jpt.value({"a": 1, "b": 1}) + jpt.value({"a": 1, "b": 0})
        absent = jpt.value({"a": 0, "b": 1}) + jpt.value({"a": 0, "b": 0})
        assert present > absent

    def test_introduces_correlation(self):
        # the max-dominance joint is not the product of its own marginals
        jpt = JointProbabilityTable.from_max_dominance({"a": 0.8, "b": 0.2})
        pa = jpt.edge_marginal("a")
        pb = jpt.edge_marginal("b")
        joint_present = jpt.value({"a": 1, "b": 1})
        assert joint_present != pytest.approx(pa * pb, abs=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            JointProbabilityTable.from_max_dominance({})


class TestConditional:
    def test_conditioning_renormalizes(self):
        jpt = JointProbabilityTable.from_independent_marginals({"a": 0.5, "b": 0.25})
        conditional = jpt.conditional({"a": 1})
        assert conditional.is_normalized()
        assert conditional.edge_marginal("b") == pytest.approx(0.25)

    def test_conditioning_on_everything_gives_unit(self):
        jpt = JointProbabilityTable.from_independent_marginals({"a": 0.5})
        conditional = jpt.conditional({"a": 1})
        assert conditional.variables == ()
        assert conditional.total() == pytest.approx(1.0)

    def test_zero_probability_evidence_raises(self):
        jpt = JointProbabilityTable(("a",), {(1,): 1.0})
        with pytest.raises(ProbabilityError):
            jpt.conditional({"a": 0})

    def test_entropy_bounds(self):
        uniform = JointProbabilityTable.from_independent_marginals({"a": 0.5, "b": 0.5})
        skewed = JointProbabilityTable.from_independent_marginals({"a": 0.99, "b": 0.99})
        assert uniform.entropy() == pytest.approx(2.0)
        assert skewed.entropy() < uniform.entropy()
