"""Unit tests for the labeled graph substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graphs import LabeledGraph
from repro.graphs.labeled_graph import Edge, edge_key


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.is_connected()

    def test_add_vertices_and_edges(self):
        graph = LabeledGraph(name="toy")
        graph.add_vertex(1, "a")
        graph.add_vertex(2, "b")
        graph.add_edge(1, 2, "x")
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.vertex_label(1) == "a"
        assert graph.edge_label(1, 2) == "x"
        assert graph.edge_label(2, 1) == "x"

    def test_from_edges_builder(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3)], name="built"
        )
        assert graph.num_edges == 2
        assert graph.edge_label(2, 3) is None
        assert graph.name == "built"

    def test_re_adding_vertex_overwrites_label(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "a")
        graph.add_vertex(1, "b")
        assert graph.vertex_label(1) == "b"
        assert graph.num_vertices == 1

    def test_edge_requires_existing_vertices(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "a")
        with pytest.raises(VertexNotFoundError):
            graph.add_edge(1, 2, "x")

    def test_self_loops_rejected(self):
        graph = LabeledGraph()
        graph.add_vertex(1, "a")
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, "x")

    def test_copy_is_independent(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        clone = graph.copy()
        clone.remove_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 0


class TestEdgeKey:
    def test_edge_key_is_order_independent(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_edge_dataclass(self):
        edge = Edge(2, 1, "x")
        assert edge.key() == (1, 2)
        assert edge.endpoints() == frozenset({1, 2})
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(VertexNotFoundError):
            edge.other(5)


class TestRemoval:
    def test_remove_edge(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        graph.remove_edge(2, 1)
        assert graph.num_edges == 0
        assert not graph.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_vertex_removes_incident_edges(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "y")]
        )
        graph.remove_vertex(2)
        assert graph.num_vertices == 2
        assert graph.num_edges == 0

    def test_remove_isolated_vertices(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b", 3: "c"}, [(1, 2, "x")])
        removed = graph.remove_isolated_vertices()
        assert removed == [3]
        assert graph.num_vertices == 2


class TestInspection:
    def test_neighbors_and_degree(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (1, 3, "y")]
        )
        assert sorted(graph.neighbors(1)) == [2, 3]
        assert graph.degree(1) == 2
        assert graph.degree(2) == 1
        with pytest.raises(VertexNotFoundError):
            graph.degree(9)

    def test_incident_edges(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        incident = graph.incident_edges(1)
        assert len(incident) == 1
        assert incident[0].label == "x"

    def test_label_counts(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "a", 3: "b"}, [(1, 2, "x"), (2, 3, "x")]
        )
        assert graph.vertex_label_counts() == {"a": 2, "b": 1}
        assert graph.edge_label_counts() == {"x": 2}

    def test_edge_signature_counts(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "a", 3: "b"}, [(1, 2, "x"), (2, 3, "x")]
        )
        signatures = graph.edge_signature_counts()
        assert sum(signatures.values()) == 2
        assert signatures[(("'a'", "'a'"), "x")] == 1

    def test_contains_and_len(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        assert 1 in graph
        assert 9 not in graph
        assert len(graph) == 2

    def test_equality_is_structural(self):
        g1 = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        g2 = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        g3 = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "y")])
        assert g1 == g2
        assert g1 != g3

    def test_graphs_are_unhashable(self):
        graph = LabeledGraph()
        with pytest.raises(TypeError):
            hash(graph)


class TestStructure:
    def test_connectivity(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c", 4: "d"}, [(1, 2, "x"), (3, 4, "y")]
        )
        assert not graph.is_connected()
        components = graph.connected_components()
        assert len(components) == 2
        graph.add_edge(2, 3, "z")
        assert graph.is_connected()

    def test_triangles(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c", 4: "d"},
            [(1, 2, "x"), (2, 3, "x"), (1, 3, "x"), (3, 4, "x")],
        )
        triangles = graph.triangles()
        assert triangles == [(1, 2, 3)]

    def test_subgraph_by_edges(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "y")]
        )
        sub = graph.subgraph_by_edges([(1, 2)])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.vertex_label(1) == "a"
        with pytest.raises(EdgeNotFoundError):
            graph.subgraph_by_edges([(1, 3)])

    def test_subgraph_by_vertices(self):
        graph = LabeledGraph.from_edges(
            {1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "y"), (1, 3, "z")]
        )
        sub = graph.subgraph_by_vertices([1, 2])
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2)

    def test_relabel_vertices(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        renamed = graph.relabel_vertices({1: "u", 2: "v"})
        assert renamed.has_edge("u", "v")
        assert renamed.vertex_label("u") == "a"
        # original untouched
        assert graph.has_edge(1, 2)

    def test_relabel_must_be_injective(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        with pytest.raises(GraphError):
            graph.relabel_vertices({1: "u", 2: "u"})
