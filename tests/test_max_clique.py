"""Tests for the maximum weight clique solver."""

from __future__ import annotations

import random

import pytest

from repro.pmi.max_clique import is_clique, maximum_weight_clique


def make_adjacency(edges, nodes):
    adjacency = {node: set() for node in nodes}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    return adjacency


class TestExactSmall:
    def test_empty_graph(self):
        clique, weight = maximum_weight_clique({}, {})
        assert clique == []
        assert weight == 0.0

    def test_single_node(self):
        clique, weight = maximum_weight_clique({"a": set()}, {"a": 2.5})
        assert clique == ["a"]
        assert weight == pytest.approx(2.5)

    def test_triangle_beats_heavy_single_node(self):
        nodes = ["a", "b", "c", "d"]
        adjacency = make_adjacency([("a", "b"), ("b", "c"), ("a", "c")], nodes)
        weights = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 2.5}
        clique, weight = maximum_weight_clique(adjacency, weights)
        assert set(clique) == {"a", "b", "c"}
        assert weight == pytest.approx(3.0)

    def test_heavy_isolated_node_wins(self):
        nodes = ["a", "b", "c", "d"]
        adjacency = make_adjacency([("a", "b"), ("b", "c"), ("a", "c")], nodes)
        weights = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 5.0}
        clique, weight = maximum_weight_clique(adjacency, weights)
        assert clique == ["d"]
        assert weight == pytest.approx(5.0)

    def test_result_is_always_a_clique(self):
        rng = random.Random(5)
        nodes = list(range(10))
        edges = [(u, v) for u in nodes for v in nodes if u < v and rng.random() < 0.4]
        adjacency = make_adjacency(edges, nodes)
        weights = {node: rng.uniform(0.1, 2.0) for node in nodes}
        clique, weight = maximum_weight_clique(adjacency, weights)
        assert is_clique(adjacency, clique)
        assert weight == pytest.approx(sum(weights[n] for n in clique))

    def test_matches_brute_force_on_random_graphs(self):
        rng = random.Random(11)
        for _trial in range(5):
            nodes = list(range(8))
            edges = [(u, v) for u in nodes for v in nodes if u < v and rng.random() < 0.5]
            adjacency = make_adjacency(edges, nodes)
            weights = {node: round(rng.uniform(0.1, 1.0), 3) for node in nodes}
            _, weight = maximum_weight_clique(adjacency, weights)
            assert weight == pytest.approx(_brute_force(adjacency, weights), abs=1e-9)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            maximum_weight_clique({"a": set()}, {"a": -1.0})

    def test_zero_weights_return_single_node(self):
        adjacency = make_adjacency([("a", "b")], ["a", "b"])
        clique, weight = maximum_weight_clique(adjacency, {"a": 0.0, "b": 0.0})
        assert len(clique) >= 1
        assert weight == 0.0


def _brute_force(adjacency, weights):
    from itertools import combinations

    nodes = sorted(adjacency, key=repr)
    best = 0.0
    for size in range(1, len(nodes) + 1):
        for subset in combinations(nodes, size):
            if is_clique(adjacency, list(subset)):
                best = max(best, sum(weights[n] for n in subset))
    return best
