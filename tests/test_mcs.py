"""Tests for subgraph distance / maximum common subgraph (Definitions 7-8)."""

from __future__ import annotations

import pytest

from repro.graphs import LabeledGraph
from repro.isomorphism import (
    is_subgraph_similar,
    maximum_common_subgraph_size,
    subgraph_distance,
)
from repro.isomorphism.mcs import signature_distance_lower_bound


def build(vertex_labels, edges):
    return LabeledGraph.from_edges(vertex_labels, edges)


@pytest.fixture
def target():
    return build(
        {0: "a", 1: "b", 2: "c", 3: "d"},
        [(0, 1, "x"), (1, 2, "x"), (2, 3, "x")],
    )


class TestSubgraphDistance:
    def test_distance_zero_for_contained_query(self, target):
        query = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert subgraph_distance(query, target) == 0

    def test_distance_counts_missing_edges(self, target):
        # path a-b-c plus an extra edge that the target lacks
        query = build(
            {0: "a", 1: "b", 2: "c", 3: "z"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x")],
        )
        assert subgraph_distance(query, target) == 1

    def test_distance_two(self, target):
        query = build(
            {0: "a", 1: "b", 2: "q", 3: "r"},
            [(0, 1, "x"), (1, 2, "x"), (1, 3, "x")],
        )
        assert subgraph_distance(query, target) == 2

    def test_max_distance_cap_returns_none(self, target):
        query = build(
            {0: "q", 1: "r", 2: "s"}, [(0, 1, "x"), (1, 2, "x")]
        )
        assert subgraph_distance(query, target, max_distance=1) is None

    def test_distance_of_identical_graph_is_zero(self, target):
        assert subgraph_distance(target.copy(), target) == 0

    def test_triangle_vs_path(self):
        triangle = build(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )
        path = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])
        assert subgraph_distance(triangle, path) == 1


class TestSimilarityPredicate:
    def test_similar_within_threshold(self, target):
        query = build(
            {0: "a", 1: "b", 2: "c", 3: "z"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x")],
        )
        assert not is_subgraph_similar(query, target, 0)
        assert is_subgraph_similar(query, target, 1)
        assert is_subgraph_similar(query, target, 2)

    def test_threshold_at_least_query_size_is_trivially_true(self, target):
        query = build({0: "q", 1: "q"}, [(0, 1, "zz")])
        assert is_subgraph_similar(query, target, 1)

    def test_negative_threshold_rejected(self, target):
        query = build({0: "a", 1: "b"}, [(0, 1, "x")])
        with pytest.raises(ValueError):
            is_subgraph_similar(query, target, -1)


class TestMcsSize:
    def test_mcs_size(self, target):
        query = build(
            {0: "a", 1: "b", 2: "c", 3: "z"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x")],
        )
        assert maximum_common_subgraph_size(query, target) == 2

    def test_mcs_of_contained_query_is_its_size(self, target):
        query = build({0: "b", 1: "c"}, [(0, 1, "x")])
        assert maximum_common_subgraph_size(query, target) == 1

    def test_capped_search_returns_none(self, target):
        query = build({0: "q", 1: "r", 2: "s"}, [(0, 1, "x"), (1, 2, "x")])
        assert maximum_common_subgraph_size(query, target, max_distance=1) is None


class TestLowerBound:
    def test_signature_bound_counts_missing_signatures(self, target):
        query = build({0: "q", 1: "r"}, [(0, 1, "zz")])
        assert signature_distance_lower_bound(query, target) == 1

    def test_signature_bound_zero_when_all_present(self, target):
        query = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert signature_distance_lower_bound(query, target) == 0

    def test_signature_bound_never_exceeds_true_distance(self, target):
        query = build(
            {0: "a", 1: "b", 2: "q", 3: "r"},
            [(0, 1, "x"), (1, 2, "x"), (1, 3, "x")],
        )
        assert signature_distance_lower_bound(query, target) <= subgraph_distance(query, target)
