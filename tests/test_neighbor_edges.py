"""Unit tests for neighbor-edge-set detection and partitioning."""

from __future__ import annotations

import pytest

from repro.graphs import LabeledGraph
from repro.graphs.neighbor_edges import (
    covers_all_edges,
    is_neighbor_edge_set,
    neighbor_edge_sets,
    partition_into_neighbor_sets,
    star_edge_sets,
    triangle_edge_sets,
)


@pytest.fixture
def paper_002_skeleton() -> LabeledGraph:
    """Skeleton shaped like the paper's graph 002 (triangle + star on v3)."""
    graph = LabeledGraph(name="002c")
    for vertex, label in ((1, "a"), (2, "a"), (3, "b"), (4, "b"), (5, "c")):
        graph.add_vertex(vertex, label)
    graph.add_edge(1, 2, "e")
    graph.add_edge(1, 3, "e")
    graph.add_edge(2, 3, "e")
    graph.add_edge(3, 4, "e")
    graph.add_edge(3, 5, "e")
    return graph


class TestDetection:
    def test_star_sets_include_every_high_degree_vertex(self, paper_002_skeleton):
        stars = star_edge_sets(paper_002_skeleton)
        # vertices 1, 2 have degree 2, vertex 3 has degree 4
        assert any(len(s) == 4 for s in stars)
        assert len(stars) == 3

    def test_triangle_sets(self, paper_002_skeleton):
        triangles = triangle_edge_sets(paper_002_skeleton)
        assert len(triangles) == 1
        assert frozenset({(1, 2), (1, 3), (2, 3)}) in triangles

    def test_neighbor_edge_sets_are_deduplicated_and_sorted(self, paper_002_skeleton):
        sets = neighbor_edge_sets(paper_002_skeleton)
        assert len(sets) == len(set(sets))
        sizes = [len(s) for s in sets]
        assert sizes == sorted(sizes)

    def test_is_neighbor_edge_set_star(self, paper_002_skeleton):
        assert is_neighbor_edge_set(paper_002_skeleton, {(2, 3), (3, 4), (3, 5)})

    def test_is_neighbor_edge_set_triangle(self, paper_002_skeleton):
        assert is_neighbor_edge_set(paper_002_skeleton, {(1, 2), (1, 3), (2, 3)})

    def test_is_neighbor_edge_set_rejects_disconnected_edges(self, paper_002_skeleton):
        assert not is_neighbor_edge_set(paper_002_skeleton, {(1, 2), (3, 4)})

    def test_is_neighbor_edge_set_rejects_missing_edges(self, paper_002_skeleton):
        assert not is_neighbor_edge_set(paper_002_skeleton, {(1, 5)})

    def test_singleton_counts_as_neighbor_set(self, paper_002_skeleton):
        assert is_neighbor_edge_set(paper_002_skeleton, {(1, 2)})


class TestPartition:
    def test_partition_covers_every_edge_exactly_once(self, paper_002_skeleton):
        partition = partition_into_neighbor_sets(paper_002_skeleton, max_size=3)
        assert covers_all_edges(paper_002_skeleton, partition)
        all_edges = [key for group in partition for key in group]
        assert len(all_edges) == len(set(all_edges)) == paper_002_skeleton.num_edges

    def test_partition_respects_max_size(self, paper_002_skeleton):
        for max_size in (1, 2, 3, 4):
            partition = partition_into_neighbor_sets(paper_002_skeleton, max_size=max_size)
            assert all(len(group) <= max_size for group in partition)

    def test_partition_groups_are_valid_neighbor_sets(self, paper_002_skeleton):
        partition = partition_into_neighbor_sets(paper_002_skeleton, max_size=4)
        for group in partition:
            assert is_neighbor_edge_set(paper_002_skeleton, group)

    def test_partition_rejects_bad_max_size(self, paper_002_skeleton):
        with pytest.raises(ValueError):
            partition_into_neighbor_sets(paper_002_skeleton, max_size=0)

    def test_partition_of_single_edge_graph(self):
        graph = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        partition = partition_into_neighbor_sets(graph)
        assert partition == [frozenset({(1, 2)})]
