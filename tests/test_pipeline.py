"""Unit tests for the staged candidate-pipeline engine (``core.pipeline``):
candidate-set mechanics, the mutable ``ThresholdState``, per-stage
statistics (recording and merge edge cases), pipeline composability, and
the mask-honoring structural filter entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CandidateSet,
    PipelineStage,
    ProbabilisticGraphDatabase,
    QueryAnswer,
    QueryPipeline,
    QueryPlanner,
    QueryStatistics,
    SearchConfig,
    StageStatistics,
    ThresholdState,
    VerificationConfig,
    validate_top_k_query,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import QueryError, StateError
from repro.graphs import LabeledGraph
from repro.pmi import BoundConfig, FeatureSelectionConfig

EXACT_CONFIG = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))


@pytest.fixture(scope="module")
def pipeline_database():
    config = PPIDatasetConfig(
        num_graphs=6,
        num_families=2,
        vertices_per_graph=9,
        edges_per_graph=11,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=31)


@pytest.fixture(scope="module")
def indexed(pipeline_database):
    database = ProbabilisticGraphDatabase(pipeline_database.graphs)
    database.build_index(
        feature_config=FeatureSelectionConfig(
            alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12
        ),
        bound_config=BoundConfig(method="exact"),
        rng=17,
    )
    return database


class TestCandidateSet:
    def test_starts_full_with_vacuous_bounds(self):
        candidates = CandidateSet(5)
        assert candidates.active_count == 5
        assert list(candidates.active_ids()) == [0, 1, 2, 3, 4]
        assert np.all(candidates.usim == 1.0)
        assert np.all(candidates.lsim == 0.0)

    def test_keep_only_narrows_never_widens(self):
        candidates = CandidateSet(5)
        candidates.keep_only([1, 3])
        assert list(candidates.active_ids()) == [1, 3]
        # re-asking for a deactivated id must not resurrect it
        candidates.deactivate([3])
        candidates.keep_only([0, 1, 3])
        assert list(candidates.active_ids()) == [1]

    def test_record_bounds(self):
        candidates = CandidateSet(4)
        candidates.record_bounds(np.array([1, 2]), np.array([0.8, 0.6]), np.array([0.2, 0.1]))
        assert candidates.usim[1] == 0.8 and candidates.lsim[2] == 0.1
        assert candidates.usim[0] == 1.0 and candidates.lsim[0] == 0.0


class TestThresholdState:
    def test_fixed_floor_never_moves(self):
        state = ThresholdState.fixed(0.4)
        assert not state.is_top_k
        assert state.admits(0.4) and not state.admits(0.39)

    def test_top_k_heap_fills_then_tightens(self):
        state = ThresholdState.for_top_k(2)
        assert state.admits(0.01)  # floor starts at zero
        assert state.offer(QueryAnswer(0, None, 0.5, "verification"))
        assert state.floor == 0.0  # heap not yet full
        assert state.offer(QueryAnswer(1, None, 0.3, "verification"))
        assert state.floor == 0.3  # k-th best verified probability
        assert not state.admits(0.29)
        assert state.offer(QueryAnswer(2, None, 0.9, "verification"))
        assert state.floor == 0.5
        assert [a.graph_id for a in state.ranked()] == [2, 0]

    def test_top_k_tie_breaks_by_smaller_graph_id(self):
        state = ThresholdState.for_top_k(2)
        state.offer(QueryAnswer(5, None, 0.5, "verification"))
        state.offer(QueryAnswer(9, None, 0.5, "verification"))
        # equal probability, smaller id than the k-th place: displaces it
        assert state.offer(QueryAnswer(7, None, 0.5, "verification"))
        # equal probability, larger id than the k-th place: rejected
        assert not state.offer(QueryAnswer(10, None, 0.5, "verification"))
        assert [a.graph_id for a in state.ranked()] == [5, 7]

    def test_zero_probability_is_never_an_answer(self):
        state = ThresholdState.for_top_k(3)
        assert not state.offer(QueryAnswer(0, None, 0.0, "verification"))
        assert state.ranked() == []

    def test_seed_floor_uses_kth_largest_lower_bound(self):
        state = ThresholdState.for_top_k(2)
        state.seed_floor(np.array([0.1, 0.7, 0.4]))
        assert state.floor == 0.4
        state.seed_floor(np.array([0.05]))  # fewer than k values: no-op
        assert state.floor == 0.4

    def test_partial_mode_floor_stays_at_seed(self):
        state = ThresholdState.for_top_k(1, tighten=False)
        state.offer(QueryAnswer(0, None, 0.9, "verification"))
        assert state.floor == 0.0

    def test_offer_requires_top_k_mode(self):
        with pytest.raises(StateError):
            ThresholdState.fixed(0.5).offer(QueryAnswer(0, None, 0.5, "verification"))


class TestStageStatistics:
    def test_threshold_query_records_three_stages(self, indexed, pipeline_database):
        query = extract_query(pipeline_database.graphs[0].skeleton, 3, rng=5)
        result = indexed.query(query, 0.3, 1, config=EXACT_CONFIG, rng=3)
        stats = result.statistics
        assert [s.stage for s in stats.stages] == [
            "structural_filter",
            "pmi_pruning",
            "verification",
        ]
        structural, pmi, verification = stats.stages
        assert structural.examined == len(indexed.graphs)
        assert structural.passed == stats.structural_candidates
        assert pmi.examined == structural.passed
        assert pmi.pruned == stats.pruned_by_upper_bound
        assert pmi.accepted == stats.accepted_by_lower_bound
        assert verification.examined == pmi.passed
        assert verification.examined == stats.verified
        assert all(s.seconds >= 0.0 for s in stats.stages)
        counters = stats.as_dict()["stage_counters"]
        assert [c["stage"] for c in counters] == [s.stage for s in stats.stages]

    def test_stage_accounting_is_conserved(self, indexed, pipeline_database):
        query = extract_query(pipeline_database.graphs[1].skeleton, 3, rng=9)
        result = indexed.query(query, 0.3, 1, config=EXACT_CONFIG, rng=3)
        for stage in result.statistics.stages[:-1]:  # filters: examined splits up
            assert stage.examined == stage.pruned + stage.accepted + stage.passed


class TestStatisticsMergeStages:
    def make_stats(self, scale: int) -> QueryStatistics:
        stats = QueryStatistics(database_size=scale, verified=scale)
        stats.stages = [
            StageStatistics("structural_filter", examined=4 * scale, pruned=scale,
                            passed=3 * scale, seconds=0.1 * scale),
            StageStatistics("verification", examined=3 * scale, accepted=scale,
                            passed=scale, seconds=0.2 * scale),
        ]
        return stats

    def test_merge_sums_stage_counters_and_maxes_seconds(self):
        merged = QueryStatistics.merge([self.make_stats(1), self.make_stats(2)])
        assert [s.stage for s in merged.stages] == ["structural_filter", "verification"]
        assert merged.stages[0].examined == 12
        assert merged.stages[0].pruned == 3
        assert merged.stages[1].accepted == 3
        assert merged.stages[0].seconds == pytest.approx(0.2)
        assert merged.stages[1].seconds == pytest.approx(0.4)

    def test_merge_of_nothing_is_zero(self):
        merged = QueryStatistics.merge([])
        assert merged.stages == []
        assert merged.as_dict()["stage_counters"] == []

    def test_merge_single_part_is_identity(self):
        part = self.make_stats(3)
        merged = QueryStatistics.merge([part])
        assert merged.as_dict() == part.as_dict()

    def test_merge_mismatched_stage_lists_raises(self):
        other = self.make_stats(1)
        other.stages = other.stages[::-1]
        with pytest.raises(ValueError, match="stage lists"):
            QueryStatistics.merge([self.make_stats(1), other])
        empty = QueryStatistics()
        with pytest.raises(ValueError, match="stage lists"):
            QueryStatistics.merge([self.make_stats(1), empty])

    def test_merge_legacy_only_parts_still_works(self):
        left = QueryStatistics(database_size=4, verified=1)
        right = QueryStatistics(database_size=3, verified=2)
        merged = QueryStatistics.merge([left, right])
        assert merged.database_size == 7 and merged.verified == 3
        assert merged.stages == []


class TestPipelineComposability:
    def test_planner_owns_a_default_pipeline(self, indexed):
        planner = indexed.planner
        assert isinstance(planner.pipeline, QueryPipeline)
        assert [stage.name for stage in planner.pipeline.stages] == [
            "structural_filter",
            "pmi_pruning",
            "verification",
        ]

    def test_custom_stage_composes(self, indexed, pipeline_database):
        """A caller-defined stage slots into the cascade without planner edits."""

        class EvenIdOnlyStage(PipelineStage):
            name = "even_ids_only"

            def run(self, candidates, ctx, stage_stats):
                active = candidates.active_ids()
                odd = active[active % 2 == 1]
                candidates.deactivate(odd)
                stage_stats.pruned = len(odd)
                stage_stats.passed = candidates.active_count

        planner = QueryPlanner(
            indexed.graphs, indexed.pmi, indexed.structural_index
        )
        planner.pipeline = QueryPipeline(
            [EvenIdOnlyStage(), *planner.pipeline.stages]
        )
        query = extract_query(pipeline_database.graphs[0].skeleton, 3, rng=5)
        result = planner.execute(query, 0.1, 1, config=EXACT_CONFIG, rng=3)
        assert all(answer.graph_id % 2 == 0 for answer in result.answers)
        assert result.statistics.stages[0].stage == "even_ids_only"
        baseline = indexed.query(query, 0.1, 1, config=EXACT_CONFIG, rng=3)
        assert result.answer_ids() == {
            gid for gid in baseline.answer_ids() if gid % 2 == 0
        }

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            QueryPipeline([])


class TestTopKValidation:
    def test_bad_k_rejected(self, indexed, pipeline_database):
        query = extract_query(pipeline_database.graphs[0].skeleton, 3, rng=5)
        for bad_k in (0, -2, True, 1.5, "3"):
            with pytest.raises(QueryError):
                indexed.query_top_k(query, bad_k, 1)

    def test_structure_checks_still_apply(self, indexed):
        disconnected = LabeledGraph.from_edges(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1, "x"), (2, 3, "x")]
        )
        with pytest.raises(QueryError):
            validate_top_k_query(disconnected, 2, 1)

    def test_top_k_before_index_rejected(self, pipeline_database):
        from repro.exceptions import IndexError_

        database = ProbabilisticGraphDatabase(pipeline_database.graphs)
        query = extract_query(pipeline_database.graphs[0].skeleton, 3, rng=5)
        with pytest.raises(IndexError_):
            database.query_top_k(query, 2, 1)


class TestFilterMask:
    def test_mask_honors_incoming_active_set(self, indexed, pipeline_database):
        query = extract_query(pipeline_database.graphs[0].skeleton, 3, rng=5)
        structural_filter = indexed.planner.structural_filter
        full = structural_filter.filter_mask(query, 1)
        assert full.dtype == bool and full.shape == (len(indexed.graphs),)
        active = np.zeros(len(indexed.graphs), dtype=bool)
        active[:2] = True
        restricted = structural_filter.filter_mask(query, 1, active=active)
        assert not restricted[2:].any()
        assert np.array_equal(restricted, full & active)

    def test_filter_still_returns_id_lists(self, indexed, pipeline_database):
        query = extract_query(pipeline_database.graphs[0].skeleton, 3, rng=5)
        structural_filter = indexed.planner.structural_filter
        outcome = structural_filter.filter(query, 1)
        mask = structural_filter.filter_mask(query, 1)
        assert outcome.candidate_ids == [int(g) for g in np.flatnonzero(mask)]
        assert sorted(outcome.candidate_ids + outcome.pruned_ids) == list(
            range(len(indexed.graphs))
        )
