"""Tests for the reusable query planner, the batch ``query_many`` API, the
vectorized pruner parity with the per-graph loop, and PMI persistence."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import (
    ProbabilisticGraphDatabase,
    ProbabilisticPruner,
    PruningDecision,
    QueryPlanner,
    SearchConfig,
    VerificationConfig,
    aggregate_statistics,
    relax_query,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import IndexError_, QueryError
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex


@pytest.fixture(scope="module")
def planner_database():
    config = PPIDatasetConfig(
        num_graphs=6,
        num_families=2,
        vertices_per_graph=9,
        edges_per_graph=11,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=31)


@pytest.fixture(scope="module")
def indexed(planner_database):
    database = ProbabilisticGraphDatabase(planner_database.graphs)
    database.build_index(
        feature_config=FeatureSelectionConfig(
            alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12
        ),
        bound_config=BoundConfig(method="exact"),
        rng=17,
    )
    return database


@pytest.fixture(scope="module")
def workload(planner_database):
    return [
        extract_query(planner_database.graphs[i].skeleton, 3, rng=5 + i)
        for i in range(4)
    ]


def answers_as_tuples(result):
    return [(a.graph_id, a.probability, a.decided_by) for a in result.answers]


class TestQueryMany:
    def test_batch_matches_sequential_queries(self, indexed, workload):
        config = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        batch = indexed.query_many(workload, 0.3, 1, config=config, rng=3)
        sequential = [indexed.query(q, 0.3, 1, config=config, rng=3) for q in workload]
        assert len(batch) == len(sequential) == len(workload)
        for batch_result, sequential_result in zip(batch, sequential):
            assert answers_as_tuples(batch_result) == answers_as_tuples(sequential_result)

    def test_batch_validates_every_query(self, indexed, workload):
        from repro.graphs import LabeledGraph

        disconnected = LabeledGraph.from_edges(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1, "x"), (2, 3, "x")]
        )
        with pytest.raises(QueryError):
            indexed.query_many([*workload, disconnected], 0.3, 1)

    def test_batch_requires_index(self, planner_database, workload):
        database = ProbabilisticGraphDatabase(planner_database.graphs)
        with pytest.raises(IndexError_):
            database.query_many(workload, 0.3, 1)

    def test_aggregate_statistics(self, indexed, workload):
        config = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        batch = indexed.query_many(workload, 0.3, 1, config=config, rng=3)
        totals = aggregate_statistics(batch)
        assert totals["num_queries"] == len(workload)
        assert totals["answers"] == sum(len(r.answers) for r in batch)
        assert totals["database_size"] == len(indexed.graphs)
        assert totals["mean_seconds_per_query"] >= 0.0


class TestPlanner:
    def test_build_index_constructs_planner(self, indexed):
        assert isinstance(indexed.planner, QueryPlanner)
        assert indexed.planner.pmi is indexed.pmi
        assert indexed.planner.structural_index is indexed.structural_index

    def test_plan_is_reusable(self, indexed, workload):
        config = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        plan = indexed.planner.plan(workload[0], 0.3, 1, config)
        first = indexed.planner.execute_plan(plan, rng=3)
        second = indexed.planner.execute_plan(plan, rng=3)
        assert answers_as_tuples(first) == answers_as_tuples(second)

    def test_row_views_share_index_memory(self, indexed):
        row = indexed.pmi.row(0)
        assert np.shares_memory(row.lower, indexed.pmi._lower)
        assert np.shares_memory(row.upper, indexed.pmi._upper)
        assert np.shares_memory(row.present, indexed.pmi._present)


class TestVectorizedPrunerParity:
    def test_partition_matches_per_graph_loop(self, indexed, workload):
        """The batched row-view pruner must reproduce the seed's sequential
        per-graph partition (pruned / accepted / remaining) exactly."""
        pmi = indexed.pmi
        for query_index, query in enumerate(workload):
            relaxed = relax_query(query, 1)
            candidate_ids = list(range(len(indexed.graphs)))

            # seed-style loop: per-graph dict rows, containment recomputed per
            # graph, sequential decisions
            loop_pruner = ProbabilisticPruner(pmi.features, rng=random.Random(5))
            loop_partition = []
            for graph_id in candidate_ids:
                bounds = loop_pruner.compute_bounds(relaxed, pmi.bounds_for_graph(graph_id))
                loop_partition.append(loop_pruner.decide(bounds, 0.4))

            # planner-style batch: shared containment, columnar row views,
            # vectorized decision masks
            batch_pruner = ProbabilisticPruner(pmi.features)
            containment = batch_pruner.prepare(relaxed)
            generator = random.Random(5)
            bounds_list = [
                batch_pruner.compute_bounds_from_row(
                    relaxed, pmi.row(graph_id), containment, rng=generator
                )
                for graph_id in candidate_ids
            ]
            pruned_mask, accepted_mask = batch_pruner.decide_batch(bounds_list, 0.4)

            for position, decision in enumerate(loop_partition):
                assert (decision is PruningDecision.PRUNED) == bool(
                    pruned_mask[position]
                ), f"query {query_index}, graph {candidate_ids[position]}"
                assert (decision is PruningDecision.ACCEPTED) == bool(
                    accepted_mask[position]
                ), f"query {query_index}, graph {candidate_ids[position]}"

    def test_decide_batch_empty(self):
        pruner = ProbabilisticPruner([])
        pruned, accepted = pruner.decide_batch([], 0.5)
        assert pruned.size == 0 and accepted.size == 0


class TestPmiPersistenceRoundTrip:
    def test_save_load_preserves_cells_and_answers(self, indexed, workload, tmp_path):
        target = tmp_path / "pmi"
        indexed.pmi.save(target)
        loaded = ProbabilisticMatrixIndex.load(target)

        assert loaded.summary() == indexed.pmi.summary()
        assert loaded.entries() == indexed.pmi.entries()
        assert [f.canonical for f in loaded.features] == [
            f.canonical for f in indexed.pmi.features
        ]

        reloaded_db = ProbabilisticGraphDatabase(indexed.graphs)
        reloaded_db.build_index(pmi=loaded)
        config = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        for query in workload:
            before = indexed.query(query, 0.3, 1, config=config, rng=3)
            after = reloaded_db.query(query, 0.3, 1, config=config, rng=3)
            assert answers_as_tuples(before) == answers_as_tuples(after)

    def test_prebuilt_pmi_size_mismatch_rejected(self, indexed, planner_database, tmp_path):
        target = tmp_path / "pmi"
        indexed.pmi.save(target)
        loaded = ProbabilisticMatrixIndex.load(target)
        smaller = ProbabilisticGraphDatabase(planner_database.graphs[:3])
        with pytest.raises(IndexError_):
            smaller.build_index(pmi=loaded)

    def test_load_missing_path_rejected(self, tmp_path):
        with pytest.raises(IndexError_):
            ProbabilisticMatrixIndex.load(tmp_path / "nowhere")
