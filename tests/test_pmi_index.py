"""Tests for the Probabilistic Matrix Index."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexError_
from repro.isomorphism import is_subgraph_isomorphic
from repro.pmi import BoundConfig, FeatureSelectionConfig, ProbabilisticMatrixIndex


@pytest.fixture(scope="module")
def built_index(small_ppi_database):
    index = ProbabilisticMatrixIndex(
        feature_config=FeatureSelectionConfig(
            alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12
        ),
        bound_config=BoundConfig(num_samples=80),
    )
    index.build(small_ppi_database.graphs, rng=5)
    return index, small_ppi_database


class TestBuild:
    def test_requires_build_before_lookup(self):
        index = ProbabilisticMatrixIndex()
        with pytest.raises(IndexError_):
            index.bounds_for_graph(0)
        with pytest.raises(IndexError_):
            index.entries()

    def test_build_fills_rows_for_every_graph(self, built_index):
        index, database = built_index
        for graph_id in range(len(database.graphs)):
            row = index.bounds_for_graph(graph_id)
            assert isinstance(row, dict)

    def test_non_empty_cells_only_for_contained_features(self, built_index):
        index, database = built_index
        for entry in index.entries()[:30]:
            feature = index.feature_by_id(entry.feature_id)
            skeleton = database.graphs[entry.graph_id].skeleton
            assert is_subgraph_isomorphic(feature.graph, skeleton)

    def test_bounds_are_valid_probability_intervals(self, built_index):
        index, _ = built_index
        for entry in index.entries():
            assert 0.0 <= entry.bounds.lower <= entry.bounds.upper <= 1.0

    def test_unknown_graph_or_feature(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexError_):
            index.bounds_for_graph(9999)
        with pytest.raises(IndexError_):
            index.feature_by_id(9999)
        assert index.bounds(0, 9999) is None

    def test_graphs_containing_feature_consistent_with_rows(self, built_index):
        index, _ = built_index
        feature_id = index.features[0].feature_id
        containing = index.graphs_containing_feature(feature_id)
        for graph_id in containing:
            assert feature_id in index.bounds_for_graph(graph_id)

    def test_summary_and_size(self, built_index):
        index, database = built_index
        summary = index.summary()
        assert summary["database_size"] == len(database.graphs)
        assert summary["num_features"] == index.num_features
        assert summary["index_bytes"] > 0
        assert summary["build_seconds"] >= 0.0

    def test_build_with_precomputed_features(self, built_index, small_ppi_database):
        index, _ = built_index
        other = ProbabilisticMatrixIndex(bound_config=BoundConfig(num_samples=40))
        other.build(small_ppi_database.graphs, features=index.features, rng=1)
        assert other.num_features == index.num_features

    def test_repr(self, built_index):
        index, _ = built_index
        assert "built" in repr(index)


class TestRowViews:
    def test_row_matches_dict_view(self, built_index):
        index, database = built_index
        for graph_id in range(len(database.graphs)):
            row = index.row(graph_id)
            dict_view = index.bounds_for_graph(graph_id)
            for column, feature_id in enumerate(row.feature_ids):
                feature_id = int(feature_id)
                if row.present[column]:
                    assert dict_view[feature_id].as_pair() == row.interval(column)
                else:
                    assert feature_id not in dict_view

    def test_row_rejects_unknown_graph(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexError_):
            index.row(9999)


class TestSubset:
    def test_subset_rows_match_source(self, built_index):
        index, _ = built_index
        sub = index.subset(range(2, 6))
        assert sub.database_size == 4
        assert sub.num_features == index.num_features
        for new_id, old_id in enumerate(range(2, 6)):
            assert sub.bounds_for_graph(new_id) == index.bounds_for_graph(old_id)

    def test_subset_accepts_arbitrary_id_lists(self, built_index):
        index, _ = built_index
        sub = index.subset([5, 1, 3])
        assert sub.database_size == 3
        for new_id, old_id in enumerate([5, 1, 3]):
            assert sub.bounds_for_graph(new_id) == index.bounds_for_graph(old_id)

    def test_subset_rejects_unknown_ids(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexError_):
            index.subset([0, 9999])

    def test_subset_requires_built(self):
        with pytest.raises(IndexError_):
            ProbabilisticMatrixIndex().subset([0])

    def test_slice_save_load_roundtrip_equals_slicing_loaded_full(
        self, built_index, tmp_path
    ):
        """save(subset) → load == load(save(full)) → subset: the shard slice
        persistence path and the slice-a-loaded-index path must agree."""
        index, _ = built_index
        ids = range(1, 5)

        index.subset(ids).save(tmp_path / "slice")
        loaded_slice = ProbabilisticMatrixIndex.load(tmp_path / "slice")

        index.save(tmp_path / "full")
        sliced_loaded = ProbabilisticMatrixIndex.load(tmp_path / "full").subset(ids)

        assert loaded_slice.entries() == sliced_loaded.entries()
        assert loaded_slice.database_size == sliced_loaded.database_size == 4
        assert [f.canonical for f in loaded_slice.features] == [
            f.canonical for f in sliced_loaded.features
        ]
        for graph_id in range(4):
            assert loaded_slice.bounds_for_graph(graph_id) == sliced_loaded.bounds_for_graph(
                graph_id
            )


class TestPersistence:
    def test_round_trip_preserves_everything(self, built_index, tmp_path):
        index, _ = built_index
        index.save(tmp_path / "pmi")
        loaded = type(index).load(tmp_path / "pmi")
        assert loaded.entries() == index.entries()
        assert loaded.summary() == index.summary()
        assert loaded.feature_config == index.feature_config
        assert loaded.bound_config == index.bound_config
        for feature in index.features:
            restored = loaded.feature_by_id(feature.feature_id)
            assert restored.canonical == feature.canonical
            assert restored.support == feature.support

    def test_save_requires_built(self, tmp_path):
        from repro.pmi import ProbabilisticMatrixIndex

        with pytest.raises(IndexError_):
            ProbabilisticMatrixIndex().save(tmp_path / "pmi")


class TestCorruptPayloadDiagnostics:
    """Torn or damaged PMI files must raise an error that names the file and
    points at recovery, not a bare decoder traceback."""

    def saved(self, built_index, tmp_path):
        index, _ = built_index
        index.save(tmp_path / "pmi")
        return tmp_path / "pmi", type(index)

    def test_missing_directory(self, built_index, tmp_path):
        _, cls = self.saved(built_index, tmp_path)
        with pytest.raises(IndexError_, match="no persisted PMI"):
            cls.load(tmp_path / "absent")

    def test_corrupt_metadata_names_the_file(self, built_index, tmp_path):
        directory, cls = self.saved(built_index, tmp_path)
        (directory / "pmi_meta.json").write_bytes(b'{"type": "probabilistic_mat')
        with pytest.raises(IndexError_, match="corrupt PMI metadata") as exc:
            cls.load(directory)
        assert "pmi_meta.json" in str(exc.value)
        assert "snapshot" in str(exc.value)

    def test_truncated_arrays_name_the_file(self, built_index, tmp_path):
        directory, cls = self.saved(built_index, tmp_path)
        arrays = directory / "pmi_arrays.npz"
        arrays.write_bytes(arrays.read_bytes()[: arrays.stat().st_size // 2])
        with pytest.raises(IndexError_, match="corrupt PMI arrays") as exc:
            cls.load(directory)
        assert "pmi_arrays.npz" in str(exc.value)
        assert "snapshot" in str(exc.value)

    def test_garbage_arrays_name_the_file(self, built_index, tmp_path):
        directory, cls = self.saved(built_index, tmp_path)
        (directory / "pmi_arrays.npz").write_bytes(b"this is not a zip archive")
        with pytest.raises(IndexError_, match="corrupt PMI arrays"):
            cls.load(directory)

    def test_unsupported_version(self, built_index, tmp_path):
        import json

        directory, cls = self.saved(built_index, tmp_path)
        meta_path = directory / "pmi_meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = meta["version"] + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexError_, match="unsupported PMI format version"):
            cls.load(directory)
