"""Tests for possible-world semantics (Definition 3, Equation 1, Example 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import VerificationError
from repro.graphs import enumerate_possible_worlds
from repro.graphs.possible_worlds import total_world_mass

from tests.conftest import make_simple_probabilistic_graph


class TestEnumeration:
    def test_number_of_worlds(self, triangle_graph_001):
        worlds = enumerate_possible_worlds(triangle_graph_001, skip_zero=False)
        assert len(worlds) == 2 ** 3

    def test_probabilities_sum_to_one(self, triangle_graph_001):
        worlds = enumerate_possible_worlds(triangle_graph_001)
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)

    def test_paper_figure1_weights(self, triangle_graph_001):
        """The 8-row JPT of graph 001 gives exactly those world weights."""
        worlds = enumerate_possible_worlds(triangle_graph_001, skip_zero=False)
        by_edges = {w.present_edges(): w.probability for w in worlds}
        all_edges = frozenset({(1, 2), (2, 3), (1, 3)})
        assert by_edges[all_edges] == pytest.approx(0.2)
        assert by_edges[frozenset()] == pytest.approx(0.1)

    def test_every_world_keeps_all_vertices(self, triangle_graph_001):
        for world in enumerate_possible_worlds(triangle_graph_001):
            assert world.graph.num_vertices == 3

    def test_sorted_by_probability(self, triangle_graph_001):
        worlds = enumerate_possible_worlds(triangle_graph_001)
        probabilities = [w.probability for w in worlds]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_assignment_round_trip(self, triangle_graph_001):
        world = enumerate_possible_worlds(triangle_graph_001)[0]
        assignment = world.assignment_dict()
        assert set(assignment) == set(triangle_graph_001.edge_variables())

    def test_overlapping_factors_are_normalized(self, overlap_graph_002):
        worlds = enumerate_possible_worlds(overlap_graph_002)
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)

    def test_example1_product_semantics(self, overlap_graph_002):
        """Example 1: a world's raw weight is the product of its JPT rows."""
        raw_mass = total_world_mass(overlap_graph_002)
        worlds = enumerate_possible_worlds(overlap_graph_002, normalize=False, skip_zero=False)
        all_present = {key: 1 for key in overlap_graph_002.edge_variables()}
        expected = overlap_graph_002.world_weight(all_present)
        by_edges = {w.present_edges(): w.probability for w in worlds}
        assert by_edges[frozenset(overlap_graph_002.edge_variables())] == pytest.approx(expected)
        assert raw_mass > 0

    def test_partitioned_graph_mass_is_exactly_one(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.4)
        assert total_world_mass(graph) == pytest.approx(1.0)


class TestSafetyLimits:
    def test_refuses_huge_enumerations(self):
        graph = make_simple_probabilistic_graph()
        with pytest.raises(VerificationError):
            enumerate_possible_worlds(graph, max_edges=2)
        with pytest.raises(VerificationError):
            total_world_mass(graph, max_edges=2)
