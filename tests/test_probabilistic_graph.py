"""Unit tests for probabilistic graphs (skeleton + neighbor-edge factors)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, ProbabilityError
from repro.graphs import LabeledGraph, NeighborEdgeFactor, ProbabilisticGraph
from repro.probability import JointProbabilityTable

from tests.conftest import make_simple_probabilistic_graph


class TestFactorValidation:
    def test_factor_variable_order_must_match_edges(self):
        jpt = JointProbabilityTable.from_independent_marginals({(1, 2): 0.5, (2, 3): 0.5})
        with pytest.raises(ProbabilityError):
            NeighborEdgeFactor(((2, 3), (1, 2)), jpt)

    def test_every_edge_needs_a_factor(self):
        skeleton = LabeledGraph.from_edges({1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "x")])
        jpt = JointProbabilityTable.from_independent_marginals({(1, 2): 0.5})
        with pytest.raises(GraphError):
            ProbabilisticGraph(skeleton, [NeighborEdgeFactor(((1, 2),), jpt)])

    def test_factor_edges_must_exist_in_skeleton(self):
        skeleton = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        jpt = JointProbabilityTable.from_independent_marginals({(1, 2): 0.5, (2, 3): 0.5})
        with pytest.raises(GraphError):
            ProbabilisticGraph(skeleton, [NeighborEdgeFactor(((1, 2), (2, 3)), jpt)])


class TestFromEdgeProbabilities:
    def test_requires_probability_for_every_edge(self):
        skeleton = LabeledGraph.from_edges({1: "a", 2: "b", 3: "c"}, [(1, 2, "x"), (2, 3, "x")])
        with pytest.raises(ProbabilityError):
            ProbabilisticGraph.from_edge_probabilities(skeleton, {(1, 2): 0.5})

    def test_unknown_correlation_model_rejected(self):
        skeleton = LabeledGraph.from_edges({1: "a", 2: "b"}, [(1, 2, "x")])
        with pytest.raises(ValueError):
            ProbabilisticGraph.from_edge_probabilities(
                skeleton, {(1, 2): 0.5}, correlation="mystery"
            )

    def test_independent_model_preserves_marginals(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.3)
        for key in graph.edge_variables():
            assert graph.edge_marginal(key) == pytest.approx(0.3)

    def test_partition_property(self):
        graph = make_simple_probabilistic_graph()
        assert graph.is_edge_partition()

    def test_max_model_builds_valid_factors(self):
        graph = make_simple_probabilistic_graph(correlation="max")
        for factor in graph.factors:
            assert factor.jpt.is_normalized()


class TestWorldMeasure:
    def test_world_weight_is_product_of_factors(self, triangle_graph_001):
        all_present = {key: 1 for key in triangle_graph_001.edge_variables()}
        assert triangle_graph_001.world_weight(all_present) == pytest.approx(0.2)
        none_present = {key: 0 for key in triangle_graph_001.edge_variables()}
        assert triangle_graph_001.world_weight(none_present) == pytest.approx(0.1)

    def test_world_graph_keeps_all_vertices(self, triangle_graph_001):
        none_present = {key: 0 for key in triangle_graph_001.edge_variables()}
        world = triangle_graph_001.world_graph(none_present)
        assert world.num_vertices == 3
        assert world.num_edges == 0

    def test_world_graph_contains_selected_edges(self, triangle_graph_001):
        assignment = {key: 0 for key in triangle_graph_001.edge_variables()}
        assignment[(1, 2)] = 1
        world = triangle_graph_001.world_graph(assignment)
        assert world.num_edges == 1
        assert world.has_edge(1, 2)

    def test_overlapping_factors_multiply(self, overlap_graph_002):
        assert not overlap_graph_002.is_edge_partition()
        assignment = {key: 1 for key in overlap_graph_002.edge_variables()}
        expected = 1.0
        for factor in overlap_graph_002.factors:
            expected *= factor.probability_of(assignment)
        assert overlap_graph_002.world_weight(assignment) == pytest.approx(expected)

    def test_factors_containing(self, overlap_graph_002):
        sharing = overlap_graph_002.factors_containing((2, 3))
        assert len(sharing) == 2
        only_one = overlap_graph_002.factors_containing((1, 2))
        assert len(only_one) == 1


class TestSampling:
    def test_sampled_assignment_covers_all_edges(self, overlap_graph_002, rng):
        assignment = overlap_graph_002.sample_world_assignment(rng)
        assert set(assignment) == set(overlap_graph_002.edge_variables())
        assert all(value in (0, 1) for value in assignment.values())

    def test_sampling_respects_marginals_for_partitioned_graph(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.8)
        key = graph.edge_variables()[0]
        hits = sum(graph.sample_world_assignment(rng)[key] for _ in range(1500))
        assert 0.74 < hits / 1500 < 0.86

    def test_sample_world_returns_labeled_graph(self, triangle_graph_001, rng):
        world = triangle_graph_001.sample_world(rng)
        assert world.num_vertices == 3
        assert world.num_edges <= 3

    def test_average_edge_probability(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.25)
        assert graph.average_edge_probability() == pytest.approx(0.25)
