"""Property-based tests (hypothesis) for the core data structures and
invariants: factor algebra, possible-world measures, canonical forms,
subgraph isomorphism and the SIP/SSP bound orderings."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import LabeledGraph, ProbabilisticGraph
from repro.graphs.canonical import canonical_form
from repro.graphs.possible_worlds import enumerate_possible_worlds, total_world_mass
from repro.isomorphism import is_subgraph_isomorphic, subgraph_distance
from repro.pmi import BoundConfig, compute_sip_bounds
from repro.pmi.bounds import exact_sip
from repro.probability import Factor, JointProbabilityTable

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

probabilities = st.floats(min_value=0.05, max_value=0.95)
labels = st.sampled_from(["a", "b", "c"])
edge_labels = st.sampled_from(["x", "y"])


@st.composite
def small_labeled_graphs(draw, min_vertices=2, max_vertices=6):
    """Connected-ish random labeled graphs with at least one edge."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    vertex_labels = [draw(labels) for _ in range(n)]
    graph = LabeledGraph()
    for index, label in enumerate(vertex_labels):
        graph.add_vertex(index, label)
    # spanning path guarantees an edge and connectivity
    for index in range(1, n):
        graph.add_edge(index - 1, index, draw(edge_labels))
    extra_pairs = [(u, v) for u in range(n) for v in range(u + 2, n)]
    for u, v in extra_pairs:
        if draw(st.booleans()):
            graph.add_edge(u, v, draw(edge_labels))
    return graph


@st.composite
def small_probabilistic_graphs(draw, max_vertices=5):
    skeleton = draw(small_labeled_graphs(max_vertices=max_vertices))
    correlation = draw(st.sampled_from(["independent", "max"]))
    probs = {key: draw(probabilities) for key in skeleton.edge_keys()}
    return ProbabilisticGraph.from_edge_probabilities(skeleton, probs, correlation=correlation)


class TestFactorProperties:
    @SETTINGS
    @given(st.dictionaries(st.sampled_from(list("abcde")), probabilities, min_size=1, max_size=4))
    def test_independent_jpt_preserves_marginals(self, marginals):
        jpt = JointProbabilityTable.from_independent_marginals(marginals)
        for variable, probability in marginals.items():
            assert jpt.edge_marginal(variable) == pytest.approx(probability)

    @SETTINGS
    @given(
        st.dictionaries(st.sampled_from(list("abcd")), probabilities, min_size=1, max_size=3),
        st.dictionaries(st.sampled_from(list("wxyz")), probabilities, min_size=1, max_size=3),
    )
    def test_product_of_normalized_disjoint_factors_is_normalized(self, m1, m2):
        f1 = JointProbabilityTable.from_independent_marginals(m1)
        f2 = JointProbabilityTable.from_independent_marginals(m2)
        assert (f1 * f2).total() == pytest.approx(1.0)

    @SETTINGS
    @given(st.dictionaries(st.sampled_from(list("abcd")), probabilities, min_size=2, max_size=4))
    def test_marginalization_is_order_independent(self, marginals):
        jpt = JointProbabilityTable.from_max_dominance(marginals)
        variables = list(marginals)
        forward = jpt.marginalize(variables[:1]).marginalize(variables[1:2])
        backward = jpt.marginalize(variables[1:2]).marginalize(variables[:1])
        assert forward == backward

    @SETTINGS
    @given(st.lists(probabilities, min_size=1, max_size=5))
    def test_bernoulli_product_total_is_one(self, values):
        product = Factor.unit()
        for index, p in enumerate(values):
            product = product * Factor.from_bernoulli(f"v{index}", p)
        assert product.total() == pytest.approx(1.0)


class TestWorldMeasureProperties:
    @SETTINGS
    @given(small_probabilistic_graphs())
    def test_world_probabilities_sum_to_one(self, graph):
        worlds = enumerate_possible_worlds(graph)
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)
        assert all(w.probability >= 0 for w in worlds)

    @SETTINGS
    @given(small_probabilistic_graphs())
    def test_partitioned_graphs_have_unit_raw_mass(self, graph):
        if graph.is_edge_partition():
            assert total_world_mass(graph) == pytest.approx(1.0)

    @SETTINGS
    @given(small_probabilistic_graphs())
    def test_edge_marginal_matches_enumeration(self, graph):
        if not graph.is_edge_partition():
            return
        key = graph.edge_variables()[0]
        expected = sum(
            w.probability for w in enumerate_possible_worlds(graph) if key in w.present_edges()
        )
        assert graph.edge_marginal(key) == pytest.approx(expected)


class TestCanonicalFormProperties:
    @SETTINGS
    @given(small_labeled_graphs(max_vertices=5), st.integers(min_value=0, max_value=1000))
    def test_canonical_form_invariant_under_relabeling(self, graph, offset):
        mapping = {v: v + offset + 100 for v in graph.vertices()}
        assert canonical_form(graph) == canonical_form(graph.relabel_vertices(mapping))

    @SETTINGS
    @given(small_labeled_graphs(max_vertices=5))
    def test_canonical_form_changes_when_an_edge_is_removed(self, graph):
        key = next(iter(graph.edge_keys()))
        smaller = graph.copy()
        smaller.remove_edge(*key)
        assert canonical_form(graph) != canonical_form(smaller)


class TestIsomorphismProperties:
    @SETTINGS
    @given(small_labeled_graphs())
    def test_every_graph_contains_itself(self, graph):
        assert is_subgraph_isomorphic(graph, graph)
        assert subgraph_distance(graph, graph) == 0

    @SETTINGS
    @given(small_labeled_graphs())
    def test_edge_subgraphs_are_contained(self, graph):
        keys = sorted(graph.edge_keys(), key=repr)
        sub = graph.subgraph_by_edges(keys[: max(1, len(keys) // 2)])
        assert is_subgraph_isomorphic(sub, graph)

    @SETTINGS
    @given(small_labeled_graphs())
    def test_distance_bounded_by_query_size(self, graph):
        other = LabeledGraph.from_edges({0: "zz", 1: "zz"}, [(0, 1, "qq")])
        distance = subgraph_distance(graph, other)
        assert distance is not None
        assert 0 <= distance <= graph.num_edges

    @SETTINGS
    @given(small_labeled_graphs(), small_labeled_graphs())
    def test_distance_zero_iff_subgraph_isomorphic(self, query, target):
        distance = subgraph_distance(query, target)
        if is_subgraph_isomorphic(query, target):
            assert distance == 0
        else:
            assert distance != 0


class TestBoundProperties:
    @SETTINGS
    @given(small_probabilistic_graphs(max_vertices=4), st.sampled_from(["a", "b", "c"]))
    def test_exact_sip_bounds_sandwich_truth(self, graph, label):
        feature = LabeledGraph()
        feature.add_vertex(0, label)
        feature.add_vertex(1, label)
        feature.add_edge(0, 1, "x")
        bounds = compute_sip_bounds(feature, graph, BoundConfig(method="exact"))
        truth = exact_sip(graph, feature)
        assert bounds.lower <= truth + 1e-6
        assert 0.0 <= bounds.lower <= 1.0
        assert 0.0 <= bounds.upper <= 1.0
        if bounds.num_cuts > 0:
            assert bounds.upper >= truth - 1e-6

    @SETTINGS
    @given(st.lists(probabilities, min_size=1, max_size=6))
    def test_lower_bound_formula_monotone_in_probabilities(self, values):
        from repro.pmi.embedding_graph import lower_bound_from_probabilities

        bound = lower_bound_from_probabilities(values)
        assert 0.0 <= bound <= 1.0
        assert bound >= max(values) - 1e-12
        boosted = lower_bound_from_probabilities([min(1.0, v + 0.01) for v in values])
        assert boosted >= bound - 1e-12

    @SETTINGS
    @given(st.lists(probabilities, min_size=1, max_size=6))
    def test_upper_bound_formula_antitone_in_probabilities(self, values):
        from repro.pmi.cuts import upper_bound_from_probabilities

        bound = upper_bound_from_probabilities(values)
        assert 0.0 <= bound <= 1.0
        assert bound <= 1.0 - max(values) + 1e-12
        assert math.isclose(
            upper_bound_from_probabilities([]), 1.0
        )
