"""Tests for probabilistic pruning: SSP bounds and the two pruning rules."""

from __future__ import annotations

import pytest

from repro.core import PruningConfig, relax_query
from repro.core.pruning import ProbabilisticPruner, PruningDecision, SspBounds
from repro.graphs import LabeledGraph
from repro.pmi import BoundConfig, compute_sip_bounds
from repro.pmi.features import Feature

from tests.conftest import make_simple_probabilistic_graph


def feature_from(graph, feature_id):
    from repro.graphs.canonical import canonical_form

    return Feature(
        feature_id=feature_id, graph=graph, support=frozenset(), canonical=canonical_form(graph)
    )


def single_edge(label_u="a", label_v="b", edge_label="x"):
    graph = LabeledGraph()
    graph.add_vertex(0, label_u)
    graph.add_vertex(1, label_v)
    graph.add_edge(0, 1, edge_label)
    return graph


def two_edge_path():
    graph = LabeledGraph()
    graph.add_vertex(0, "a")
    graph.add_vertex(1, "b")
    graph.add_vertex(2, "a")
    graph.add_edge(0, 1, "x")
    graph.add_edge(1, 2, "x")
    return graph


@pytest.fixture
def pruning_setup(rng):
    """A small, fully exact setup: features, PMI row and relaxed queries."""
    graph = make_simple_probabilistic_graph(edge_probability=0.6)
    features = [feature_from(single_edge(), 0), feature_from(two_edge_path(), 1)]
    bounds = {
        f.feature_id: compute_sip_bounds(f.graph, graph, BoundConfig(method="exact"))
        for f in features
    }
    query = two_edge_path()
    relaxed = relax_query(query, 1)
    return graph, features, bounds, relaxed


class TestBoundsComputation:
    def test_bounds_are_probability_interval(self, pruning_setup, rng):
        _, features, graph_bounds, relaxed = pruning_setup
        pruner = ProbabilisticPruner(features, rng=rng)
        bounds = pruner.compute_bounds(relaxed, graph_bounds)
        assert 0.0 <= bounds.lsim <= 1.0
        assert 0.0 <= bounds.usim <= 1.0

    def test_usim_upper_bounds_true_ssp(self, pruning_setup, rng):
        """Theorem 3: the Usim derived from the PMI never underestimates SSP."""
        graph, features, graph_bounds, relaxed = pruning_setup
        from repro.core.verification import VerificationConfig, Verifier

        pruner = ProbabilisticPruner(features, rng=rng)
        bounds = pruner.compute_bounds(relaxed, graph_bounds)
        verifier = Verifier(VerificationConfig(method="inclusion_exclusion"))
        truth = verifier.subgraph_similarity_probability(
            two_edge_path(), graph, 1, relaxed_queries=relaxed
        )
        if bounds.usim_covered:
            assert bounds.usim >= truth - 1e-6
        if bounds.lsim_covered:
            assert bounds.lsim <= truth + 1e-6

    def test_no_matching_features_means_no_usable_bounds(self, rng):
        graph = make_simple_probabilistic_graph()
        odd_feature = feature_from(single_edge("z", "z", "q"), 0)
        bounds_row = {0: compute_sip_bounds(odd_feature.graph, graph, BoundConfig(method="exact"))}
        pruner = ProbabilisticPruner([odd_feature], rng=rng)
        relaxed = relax_query(two_edge_path(), 1)
        result = pruner.compute_bounds(relaxed, bounds_row)
        assert not result.usim_covered
        assert not result.lsim_covered
        assert result.usim == 1.0
        assert result.lsim == 0.0

    def test_plain_variant_is_no_tighter_than_opt(self, pruning_setup, rng):
        _, features, graph_bounds, relaxed = pruning_setup
        opt = ProbabilisticPruner(features, PruningConfig(True, True), rng=rng).compute_bounds(
            relaxed, graph_bounds
        )
        plain = ProbabilisticPruner(features, PruningConfig(False, False), rng=rng).compute_bounds(
            relaxed, graph_bounds
        )
        if opt.usim_covered and plain.usim_covered:
            assert opt.usim <= plain.usim + 1e-9


class TestDecisions:
    def test_prune_when_usim_below_threshold(self, rng):
        pruner = ProbabilisticPruner([], rng=rng)
        bounds = SspBounds(usim=0.2, lsim=0.0, usim_covered=True, lsim_covered=True)
        assert pruner.decide(bounds, 0.5) is PruningDecision.PRUNED

    def test_accept_when_lsim_reaches_threshold(self, rng):
        pruner = ProbabilisticPruner([], rng=rng)
        bounds = SspBounds(usim=0.9, lsim=0.7, usim_covered=True, lsim_covered=True)
        assert pruner.decide(bounds, 0.6) is PruningDecision.ACCEPTED

    def test_candidate_when_thresholds_inconclusive(self, rng):
        pruner = ProbabilisticPruner([], rng=rng)
        bounds = SspBounds(usim=0.9, lsim=0.1, usim_covered=True, lsim_covered=True)
        assert pruner.decide(bounds, 0.5) is PruningDecision.CANDIDATE

    def test_uncovered_bounds_never_prune(self, rng):
        pruner = ProbabilisticPruner([], rng=rng)
        bounds = SspBounds(usim=0.0, lsim=1.0, usim_covered=False, lsim_covered=False)
        assert pruner.decide(bounds, 0.5) is PruningDecision.CANDIDATE
