"""Tests for the relaxed QP + randomized rounding (tightest Lsim)."""

from __future__ import annotations

import pytest

from repro.core.quadratic_program import (
    QPResult,
    QPSet,
    rounding_passes,
    solve_lsim_rounding,
    solve_relaxed_qp,
)


def qp_set(set_id, members, lower, upper):
    return QPSet(set_id=set_id, members=frozenset(members), lower_weight=lower, upper_weight=upper)


class TestRelaxedQP:
    def test_single_set_is_selected(self):
        sets = [qp_set(0, {"rq1"}, 0.4, 0.5)]
        x = solve_relaxed_qp(sets, frozenset({"rq1"}))
        assert len(x) == 1
        assert x[0] >= 0.99  # coverage forces selection

    def test_empty_input(self):
        assert len(solve_relaxed_qp([], frozenset())) == 0

    def test_fractional_solution_within_bounds(self):
        sets = [
            qp_set(0, {"a", "b"}, 0.3, 0.6),
            qp_set(1, {"b", "c"}, 0.2, 0.1),
            qp_set(2, {"a", "c"}, 0.25, 0.2),
        ]
        x = solve_relaxed_qp(sets, frozenset({"a", "b", "c"}))
        assert all(-1e-9 <= value <= 1 + 1e-9 for value in x)


class TestRounding:
    def test_rounding_passes_formula(self):
        import math

        assert rounding_passes(1) >= 1
        assert rounding_passes(10) == math.ceil(2 * math.log(10))

    def test_paper_example4_shape(self, rng):
        """Example 4: s1={rq1} (0.28, 0.36), s2={rq1,rq2,rq3} (0.08, 0.15)."""
        universe = frozenset({"rq1", "rq2", "rq3"})
        sets = [
            qp_set(1, {"rq1"}, 0.28, 0.36),
            qp_set(2, {"rq1", "rq2", "rq3"}, 0.08, 0.15),
        ]
        result = solve_lsim_rounding(universe, sets, rng=rng)
        assert result.covered
        # s2 must be chosen for coverage; adding s1 changes the objective to
        # 0.36 - 0.51^2 ≈ 0.0999, versus 0.08 - 0.15^2 ≈ 0.0575 for s2 alone,
        # so the best rounded solution includes both.
        assert 2 in result.chosen_ids
        assert result.lower_bound == pytest.approx(0.36 - 0.51**2, abs=1e-6) or (
            result.lower_bound == pytest.approx(0.08 - 0.15**2, abs=1e-6)
        )

    def test_lower_bound_never_negative(self, rng):
        universe = frozenset({"a"})
        sets = [qp_set(0, {"a"}, 0.1, 0.9)]
        result = solve_lsim_rounding(universe, sets, rng=rng)
        assert result.lower_bound >= 0.0

    def test_uncoverable_universe(self, rng):
        universe = frozenset({"a", "b"})
        sets = [qp_set(0, {"a"}, 0.5, 0.1)]
        result = solve_lsim_rounding(universe, sets, rng=rng)
        assert not result.covered
        assert result.lower_bound == 0.0

    def test_empty_inputs(self, rng):
        assert solve_lsim_rounding(frozenset(), [], rng=rng) == QPResult((), 0.0, 0.0, False)

    def test_reported_bound_matches_selection(self, rng):
        universe = frozenset({"a", "b"})
        sets = [
            qp_set(0, {"a"}, 0.3, 0.2),
            qp_set(1, {"b"}, 0.4, 0.3),
            qp_set(2, {"a", "b"}, 0.5, 0.9),
        ]
        result = solve_lsim_rounding(universe, sets, rng=rng)
        assert result.covered
        chosen = [s for s in sets if s.set_id in result.chosen_ids]
        lower_sum = sum(s.lower_weight for s in chosen)
        upper_sum = sum(s.upper_weight for s in chosen)
        assert result.lower_bound == pytest.approx(max(0.0, lower_sum - upper_sum**2))

    def test_better_than_trivial_choice(self, rng):
        """The rounded solution should avoid the heavy-upper-weight set."""
        universe = frozenset({"a", "b"})
        sets = [
            qp_set(0, {"a"}, 0.3, 0.2),
            qp_set(1, {"b"}, 0.4, 0.3),
            qp_set(2, {"a", "b"}, 0.5, 0.95),
        ]
        result = solve_lsim_rounding(universe, sets, rng=rng)
        # picking only set 2 would give 0.5 - 0.9025 < 0; sets {0,1} give
        # 0.7 - 0.25 = 0.45, which the rounding should find (or beat)
        assert result.lower_bound >= 0.20
