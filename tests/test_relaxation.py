"""Tests for relaxed query set generation (Lemma 1's U set)."""

from __future__ import annotations

import pytest

from repro.core import RelaxationConfig, relax_query
from repro.exceptions import QueryError
from repro.graphs import LabeledGraph
from repro.graphs.canonical import canonical_form


def build(vertex_labels, edges):
    return LabeledGraph.from_edges(vertex_labels, edges)


@pytest.fixture
def square_query():
    return build(
        {0: "a", 1: "b", 2: "a", 3: "b"},
        [(0, 1, "x"), (1, 2, "x"), (2, 3, "x"), (0, 3, "x")],
    )


class TestBasicRelaxation:
    def test_zero_distance_returns_original(self, square_query):
        [only] = relax_query(square_query, 0)
        assert only == square_query

    def test_single_deletion_count(self, square_query):
        relaxed = relax_query(square_query, 1)
        # the square is vertex-label alternating, so the four 3-edge paths
        # collapse into fewer isomorphism classes but at least one remains
        assert 1 <= len(relaxed) <= 4
        assert all(r.num_edges == 3 for r in relaxed)

    def test_deleted_edges_exactly_delta(self, square_query):
        for delta in (1, 2, 3):
            relaxed = relax_query(square_query, delta)
            assert all(r.num_edges == square_query.num_edges - delta for r in relaxed)

    def test_results_are_deduplicated(self, square_query):
        relaxed = relax_query(square_query, 2)
        forms = [canonical_form(r) for r in relaxed]
        assert len(forms) == len(set(forms))

    def test_isolated_vertices_dropped_by_default(self):
        star = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (0, 2, "x")])
        relaxed = relax_query(star, 1)
        for variant in relaxed:
            assert all(variant.degree(v) > 0 for v in variant.vertices())

    def test_isolated_vertices_kept_when_requested(self):
        star = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (0, 2, "x")])
        config = RelaxationConfig(drop_isolated_vertices=False)
        relaxed = relax_query(star, 1, config)
        assert any(variant.num_vertices == 3 for variant in relaxed)

    def test_connectivity_requirement(self):
        path = build(
            {0: "a", 1: "b", 2: "c", 3: "d"},
            [(0, 1, "x"), (1, 2, "x"), (2, 3, "x")],
        )
        all_variants = relax_query(path, 1)
        connected_only = relax_query(path, 1, RelaxationConfig(require_connected=True))
        assert len(connected_only) <= len(all_variants)
        assert all(v.is_connected() for v in connected_only)

    def test_max_variants_cap(self, square_query):
        relaxed = relax_query(square_query, 2, RelaxationConfig(max_variants=2))
        assert len(relaxed) <= 2


class TestRelabelings:
    def test_relabel_variants_added(self):
        edge = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (1, 2, "x")])
        config = RelaxationConfig(include_relabelings=True)
        relaxed = relax_query(edge, 1, config, edge_label_alphabet=["x", "y"])
        # deletion variants have 1 edge; relabeled variants keep 2 edges
        assert any(v.num_edges == 2 for v in relaxed)
        assert any(v.num_edges == 1 for v in relaxed)


class TestValidation:
    def test_negative_distance_rejected(self, square_query):
        with pytest.raises(QueryError):
            relax_query(square_query, -1)

    def test_distance_as_large_as_query_rejected(self, square_query):
        with pytest.raises(QueryError):
            relax_query(square_query, square_query.num_edges)

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            relax_query(LabeledGraph.from_edges({0: "a"}, []), 0)
