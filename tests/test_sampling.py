"""Tests for possible-world sampling and Monte-Carlo helpers."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ProbabilityError
from repro.probability import WorldSampler, monte_carlo_sample_size

from tests.conftest import make_simple_probabilistic_graph


class TestSampleSize:
    def test_paper_formula(self):
        xi, tau = 0.05, 0.1
        expected = math.ceil((4 * math.log(2 / xi)) / tau**2)
        assert monte_carlo_sample_size(xi, tau) == expected

    def test_tighter_tau_needs_more_samples(self):
        assert monte_carlo_sample_size(0.05, 0.05) > monte_carlo_sample_size(0.05, 0.2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            monte_carlo_sample_size(xi=0.0)
        with pytest.raises(ValueError):
            monte_carlo_sample_size(xi=1.5)
        with pytest.raises(ValueError):
            monte_carlo_sample_size(tau=0.0)

    def test_relative_error_above_one_rejected(self):
        """Regression: τ = 5 used to slip through and yield a degenerate
        1-sample estimate; τ is a relative error and must be in (0, 1]."""
        with pytest.raises(ValueError, match=r"tau must be in \(0, 1\]"):
            monte_carlo_sample_size(tau=5.0)
        with pytest.raises(ValueError):
            monte_carlo_sample_size(tau=1.0000001)

    def test_tau_of_exactly_one_is_allowed(self):
        assert monte_carlo_sample_size(0.05, 1.0) == math.ceil(4 * math.log(2 / 0.05))


class TestWorldSampler:
    def test_assignment_covers_all_edges(self, overlap_graph_002, rng):
        sampler = WorldSampler(overlap_graph_002, rng=rng)
        assignment = sampler.sample_assignment()
        assert set(assignment) == set(overlap_graph_002.edge_variables())

    def test_evidence_is_respected(self, triangle_graph_001, rng):
        sampler = WorldSampler(triangle_graph_001, rng=rng)
        key = triangle_graph_001.edge_variables()[0]
        for _ in range(20):
            present = sampler.sample_present_edges({key: 1})
            assert key in present

    def test_impossible_evidence_raises(self):
        graph = make_simple_probabilistic_graph(edge_probability=1.0)
        sampler = WorldSampler(graph, rng=1)
        key = graph.edge_variables()[0]
        with pytest.raises(ProbabilityError):
            sampler.sample_assignment({key: 0})

    def test_event_probability_estimate(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.7)
        sampler = WorldSampler(graph, rng=rng)
        key = graph.edge_variables()[0]
        estimate = sampler.estimate_event_probability(
            lambda present: key in present, num_samples=2000
        )
        assert estimate == pytest.approx(0.7, abs=0.05)

    def test_conditional_probability_estimate_independent_edges(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        sampler = WorldSampler(graph, rng=rng)
        first, second = graph.edge_variables()[:2]
        estimate = sampler.estimate_conditional_probability(
            event=lambda present: first in present,
            condition=lambda present: second in present,
            num_samples=3000,
        )
        # independence: conditioning on the other edge does not change the marginal
        assert estimate == pytest.approx(0.6, abs=0.06)

    def test_conditional_probability_unmet_condition_returns_zero(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        sampler = WorldSampler(graph, rng=rng)
        estimate = sampler.estimate_conditional_probability(
            event=lambda present: True,
            condition=lambda present: False,
            num_samples=50,
        )
        assert estimate == 0.0

    def test_deterministic_with_seed(self, triangle_graph_001):
        a = WorldSampler(triangle_graph_001, rng=42).sample_assignment()
        b = WorldSampler(triangle_graph_001, rng=42).sample_assignment()
        assert a == b
