"""Integration tests: the full filter-and-verify pipeline against ground truth."""

from __future__ import annotations

import pytest

from repro.core import (
    ProbabilisticGraphDatabase,
    SearchConfig,
    VerificationConfig,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import IndexError_, QueryError
from repro.graphs import LabeledGraph
from repro.pmi import BoundConfig, FeatureSelectionConfig


@pytest.fixture(scope="module")
def tiny_database():
    """A database small enough for exact (inclusion-exclusion) ground truth."""
    config = PPIDatasetConfig(
        num_graphs=6,
        num_families=2,
        vertices_per_graph=9,
        edges_per_graph=11,
        motif_vertices=4,
        motif_edges=4,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=31)


@pytest.fixture(scope="module")
def indexed_database(tiny_database):
    database = ProbabilisticGraphDatabase(tiny_database.graphs)
    database.build_index(
        feature_config=FeatureSelectionConfig(
            alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12
        ),
        # exact SIP bounds keep the pruning deterministic and provably sound,
        # so the end-to-end result must coincide with the exact ground truth
        bound_config=BoundConfig(method="exact"),
        rng=17,
    )
    return database


def exact_answers(database, query, epsilon, delta):
    """Ground-truth answer set by exact verification of every graph."""
    from repro.core.verification import Verifier

    verifier = Verifier(VerificationConfig(method="inclusion_exclusion", embedding_limit=None))
    answers = {}
    for graph_id, graph in enumerate(database.graphs):
        probability = verifier.subgraph_similarity_probability(query, graph, delta)
        if probability >= epsilon:
            answers[graph_id] = probability
    return answers


class TestValidation:
    def test_query_before_index(self, tiny_database, path_query):
        database = ProbabilisticGraphDatabase(tiny_database.graphs)
        with pytest.raises(IndexError_):
            database.query(path_query, 0.5, 1)

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticGraphDatabase([])

    def test_bad_thresholds_rejected(self, indexed_database, path_query):
        with pytest.raises(QueryError):
            indexed_database.query(path_query, 0.0, 1)
        with pytest.raises(QueryError):
            indexed_database.query(path_query, 1.5, 1)
        with pytest.raises(QueryError):
            indexed_database.query(path_query, 0.5, -1)
        with pytest.raises(QueryError):
            indexed_database.query(path_query, 0.5, path_query.num_edges)

    def test_disconnected_query_rejected(self, indexed_database):
        disconnected = LabeledGraph.from_edges(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1, "x"), (2, 3, "x")]
        )
        with pytest.raises(QueryError):
            indexed_database.query(disconnected, 0.5, 1)

    def test_len(self, indexed_database, tiny_database):
        assert len(indexed_database) == len(tiny_database.graphs)


class TestEndToEndCorrectness:
    @pytest.mark.parametrize("epsilon", [0.2, 0.4])
    def test_pipeline_matches_exact_ground_truth(self, indexed_database, tiny_database, epsilon):
        query = extract_query(tiny_database.graphs[0].skeleton, 3, rng=5)
        config = SearchConfig(
            verification=VerificationConfig(method="inclusion_exclusion")
        )
        result = indexed_database.query(query, epsilon, 1, config=config, rng=3)
        truth = exact_answers(indexed_database, query, epsilon, 1)
        assert result.answer_ids() == set(truth)

    def test_answers_sorted_by_probability(self, indexed_database, tiny_database):
        query = extract_query(tiny_database.graphs[1].skeleton, 3, rng=9)
        config = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        result = indexed_database.query(query, 0.1, 1, config=config, rng=3)
        probabilities = [answer.probability for answer in result.answers]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_statistics_are_consistent(self, indexed_database, tiny_database):
        query = extract_query(tiny_database.graphs[2].skeleton, 3, rng=2)
        config = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        result = indexed_database.query(query, 0.3, 1, config=config, rng=3)
        stats = result.statistics
        assert stats.database_size == len(tiny_database.graphs)
        assert stats.structural_candidates <= stats.database_size
        assert stats.probabilistic_candidates <= stats.structural_candidates
        assert stats.verified <= stats.probabilistic_candidates
        assert stats.answers == len(result.answers)
        assert stats.relaxed_query_count >= 1
        assert stats.total_seconds >= 0.0

    def test_disabling_pruning_still_matches_ground_truth(self, indexed_database, tiny_database):
        query = extract_query(tiny_database.graphs[3].skeleton, 3, rng=13)
        config = SearchConfig(
            verification=VerificationConfig(method="inclusion_exclusion"),
            use_structural_pruning=False,
            use_probabilistic_pruning=False,
        )
        result = indexed_database.query(query, 0.3, 1, config=config, rng=3)
        truth = exact_answers(indexed_database, query, 0.3, 1)
        assert result.answer_ids() == set(truth)
        assert result.statistics.verified == len(tiny_database.graphs)

    def test_sampling_verification_agrees_on_clear_cases(self, indexed_database, tiny_database):
        """With a low threshold the sampling pipeline should agree with the
        exact one on graphs whose SSP is far from the threshold."""
        query = extract_query(tiny_database.graphs[0].skeleton, 3, rng=7)
        exact_cfg = SearchConfig(verification=VerificationConfig(method="inclusion_exclusion"))
        sample_cfg = SearchConfig(
            verification=VerificationConfig(method="sampling", num_samples=2500)
        )
        exact_result = indexed_database.query(query, 0.15, 1, config=exact_cfg, rng=3)
        sampled_result = indexed_database.query(query, 0.15, 1, config=sample_cfg, rng=3)
        truth = exact_answers(indexed_database, query, 0.15, 1)
        clear = {gid for gid, p in truth.items() if abs(p - 0.15) > 0.08}
        assert clear & exact_result.answer_ids() == clear & sampled_result.answer_ids()
