"""Answer-cache correctness: accounting, invalidation, staleness.

The cache may only ever change *latency*, never *bytes*: a hit must return
the exact payload of the original computation, every mutation op must
invalidate, and — the regression pinned at the bottom — a stale-generation
answer must never be served after the catalog hot-swaps under the service.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import GraphCatalog, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.service import AnswerCache, QueryService, ServiceClient, ServiceConfig
from repro.service.protocol import canonical_query_key

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1
FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
BOUND_CONFIG = BoundConfig(num_samples=40)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)


def build_catalog(seed: int, num_graphs: int = 6):
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    database = generate_ppi_database(config, rng=seed)
    catalog = GraphCatalog.build(
        database.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=seed,
    )
    return database, catalog


def answer_tuples(result):
    return [
        (a.graph_id, a.graph_name, a.probability, a.decided_by)
        for a in result.answers
    ]


# ----------------------------------------------------------------------
# AnswerCache unit behavior
# ----------------------------------------------------------------------
class TestAnswerCacheUnit:
    def test_hit_miss_and_eviction_accounting(self):
        cache = AnswerCache(max_entries=2)
        assert cache.get(("a",)) is None
        cache.put(("a",), {"n": 1})
        cache.put(("b",), {"n": 2})
        assert cache.get(("a",)) == {"n": 1}
        cache.put(("c",), {"n": 3})  # evicts LRU entry ("b")
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) == {"n": 3}
        stats = cache.stats.as_dict()
        assert stats["hits"] == 2
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["hit_rate"] == 0.5

    def test_none_key_is_uncacheable(self):
        cache = AnswerCache(max_entries=4)
        cache.put(None, {"n": 1})
        assert len(cache) == 0
        assert cache.get(None) is None
        assert cache.stats.misses == 1

    def test_invalidate_clears_and_counts(self):
        cache = AnswerCache(max_entries=4)
        cache.put(("a",), {"n": 1})
        cache.put(("b",), {"n": 2})
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.get(("a",)) is None
        stats = cache.stats.as_dict()
        assert stats["invalidations"] == 1
        assert stats["entries_invalidated"] == 2

    def test_zero_capacity_disables_storage(self):
        cache = AnswerCache(max_entries=0)
        cache.put(("a",), {"n": 1})
        assert cache.get(("a",)) is None

    def test_canonical_key_ignores_query_name(self):
        database, catalog = build_catalog(seed=8000)
        catalog.close()
        query = extract_query(database.graphs[0].skeleton, 3, rng=1)
        twin = extract_query(database.graphs[0].skeleton, 3, rng=1)
        twin.name = "a-different-display-name"
        assert canonical_query_key(query) == canonical_query_key(twin)


# ----------------------------------------------------------------------
# service-level accounting
# ----------------------------------------------------------------------
def test_hit_miss_accounting_through_the_service():
    async def scenario():
        database, catalog = build_catalog(seed=8001)
        query = extract_query(database.graphs[0].skeleton, 3, rng=2)
        other = extract_query(database.graphs[1].skeleton, 3, rng=3)
        config = ServiceConfig(batch_window=0.0, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=10)
                assert client.last_response["cached"] is False
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=10)
                assert client.last_response["cached"] is True
                # same query, different seed → different streams → miss
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=11)
                assert client.last_response["cached"] is False
                # different query graph → miss
                await client.query(other, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=10)
                assert client.last_response["cached"] is False
                # threshold participates in the key (different group) → miss
                await client.query(query, 0.5, DISTANCE_THRESHOLD, rng=10)
                assert client.last_response["cached"] is False
                # top-k and threshold answers never alias
                await client.query_top_k(query, 2, DISTANCE_THRESHOLD, rng=10)
                assert client.last_response["cached"] is False
                stats = await client.stats()
                assert stats["cache"]["hits"] == 1
                assert stats["cache"]["misses"] == 5
                assert stats["counters"]["cached"] == 1
        finally:
            catalog.close()

    asyncio.run(scenario())


def test_unseeded_requests_bypass_the_cache():
    async def scenario():
        database, catalog = build_catalog(seed=8002)
        query = extract_query(database.graphs[2].skeleton, 3, rng=4)
        config = ServiceConfig(batch_window=0.0, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD)
                assert client.last_response["cached"] is False
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD)
                assert client.last_response["cached"] is False
                stats = await client.stats()
                assert stats["cache"]["hits"] == 0
                assert stats["cache"]["entries"] == 0
        finally:
            catalog.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("mutation", ["add", "remove", "update", "compact"])
def test_every_mutation_op_invalidates(mutation):
    """After any mutation through the service, the next identical request is
    a miss (and is recomputed against the new catalog state)."""

    async def scenario():
        database, catalog = build_catalog(seed=8003)
        pool = generate_ppi_database(
            PPIDatasetConfig(
                num_graphs=2,
                num_families=1,
                vertices_per_graph=8,
                edges_per_graph=9,
                motif_vertices=3,
                motif_edges=3,
                mean_edge_probability=0.6,
                probability_spread=0.2,
            ),
            rng=9003,
        ).graphs
        query = extract_query(database.graphs[0].skeleton, 3, rng=5)
        config = ServiceConfig(batch_window=0.0, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=12)
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=12)
                assert client.last_response["cached"] is True

                if mutation == "add":
                    await client.add_graph(pool[0])
                elif mutation == "remove":
                    await client.remove_graph(0)
                elif mutation == "update":
                    await client.update_graph(0, pool[0])
                else:
                    await client.compact()

                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=12)
                assert client.last_response["cached"] is False, (
                    f"{mutation} failed to invalidate the answer cache"
                )
                stats = await client.stats()
                assert stats["cache"]["invalidations"] >= 1
        finally:
            catalog.close()

    asyncio.run(scenario())


def test_stale_generation_answer_never_served_after_hot_swap():
    """Regression: an update that *changes the answer* under the same seed
    must surface the new answer immediately — the cached pre-swap payload is
    unreachable because the catalog generation is part of the cache key.

    Target graph 0 is replaced by a single disconnected edge with labels
    absent from the query, so the updated catalog must drop it from the
    answer set if it was ever an answer (and the twin proves the expected
    post-swap bytes either way)."""

    async def scenario():
        from repro.graphs import LabeledGraph, NeighborEdgeFactor, ProbabilisticGraph
        from repro.probability import JointProbabilityTable

        database, catalog = build_catalog(seed=8004)
        twin = GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=8004,
        )
        query = extract_query(database.graphs[0].skeleton, 3, rng=6)

        skeleton = LabeledGraph(name="husk")
        skeleton.add_vertex(0, "zz")
        skeleton.add_vertex(1, "zz")
        skeleton.add_edge(0, 1, "zz")
        jpt = JointProbabilityTable.from_max_dominance({(0, 1): 0.5})
        husk = ProbabilisticGraph(skeleton, [NeighborEdgeFactor(((0, 1),), jpt)], name="husk")

        config = ServiceConfig(batch_window=0.0, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                before = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=13
                )
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=13)
                assert client.last_response["cached"] is True

                await client.update_graph(0, husk)
                twin.update_graph(0, husk)

                after = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=13
                )
                assert client.last_response["cached"] is False
                expected = twin.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=13,
                )
                assert answer_tuples(after) == answer_tuples(expected)
                assert 0 not in {a.graph_id for a in after.answers}, (
                    "the husk graph cannot satisfy the query; graph 0 in the "
                    "answers means a stale pre-swap payload was served"
                )
                # sanity: the regression is only meaningful if graph 0 could
                # have been cached as an answer before the swap
                if 0 in {a.graph_id for a in before.answers}:
                    assert answer_tuples(before) != answer_tuples(after)
        finally:
            catalog.close()
            twin.close()

    asyncio.run(scenario())


def test_batched_requests_share_cache_entries():
    """A micro-batch mixing hits and misses executes only the misses."""

    async def scenario():
        database, catalog = build_catalog(seed=8005)
        query_a = extract_query(database.graphs[0].skeleton, 3, rng=7)
        query_b = extract_query(database.graphs[1].skeleton, 3, rng=8)
        config = ServiceConfig(batch_window=0.01, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                # Prime query_a's entry.
                primed = await client.query(
                    query_a, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=14
                )
                # Fire a+b concurrently: same group, one hit + one miss batch.
                hit_client = ServiceClient(service)
                miss_client = ServiceClient(service)
                hit, miss = await asyncio.gather(
                    hit_client.query(query_a, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=14),
                    miss_client.query(query_b, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=15),
                )
                assert answer_tuples(hit) == answer_tuples(primed)
                stats = await client.stats()
                assert stats["cache"]["hits"] >= 1
                assert stats["cache"]["entries"] == 2
        finally:
            catalog.close()

    asyncio.run(scenario())
