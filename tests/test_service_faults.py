"""Fault injection for the query service and the sharded-planner lifecycle.

Every failure mode must resolve into a *typed* error frame or a clean
recovery — never a hang, never a crashed dispatcher, and (the autouse
fixture below) never an orphaned shared-memory segment:

* client disconnect mid-request — the work is dropped, the service lives;
* per-request deadline expiry — ``deadline_exceeded``, work skipped;
* a SIGKILL'd pool worker — the broken pool falls back in-process with
  byte-identical answers, then rebuilds;
* a full admission queue — immediate ``overloaded``;
* graceful shutdown mid-batch — queued work completes, new work gets
  ``shutting_down``;
* ``ShardedPlanner.close()`` double-close and close-during-inflight —
  idempotent and drain-on-close under concurrent submission.
"""

from __future__ import annotations

import asyncio
import gc
import os
import signal
import threading

import pytest

from repro.core import GraphCatalog, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import ServiceError
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.service import QueryService, ServiceClient, ServiceConfig
from repro.service.protocol import DEADLINE_EXCEEDED, OVERLOADED, SHUTTING_DOWN
from repro.utils.shm import resident_segment_names

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1
FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
BOUND_CONFIG = BoundConfig(num_samples=40)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Same bar as test_shm_parity: faults must not orphan shm segments."""
    before = set(resident_segment_names())
    yield
    gc.collect()
    leaked = set(resident_segment_names()) - before
    assert not leaked, f"orphaned shared-memory segments: {sorted(leaked)}"


def build_catalog(seed: int, num_graphs: int = 6, **kwargs) -> tuple:
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    database = generate_ppi_database(config, rng=seed)
    catalog = GraphCatalog.build(
        database.graphs,
        feature_config=FEATURE_CONFIG,
        bound_config=BOUND_CONFIG,
        rng=seed,
        **kwargs,
    )
    return database, catalog


def answer_tuples(result):
    return [
        (a.graph_id, a.graph_name, a.probability, a.decided_by)
        for a in result.answers
    ]


def test_client_disconnect_mid_request_does_not_kill_the_service():
    """A TCP client that vanishes mid-request leaves the service healthy."""

    async def scenario():
        database, catalog = build_catalog(seed=7001)
        query = extract_query(database.graphs[0].skeleton, 3, rng=1)
        # A long batch window guarantees the rude client's request is still
        # queued (not executing) when the connection dies.
        config = ServiceConfig(batch_window=0.2, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                host, port = await service.serve_tcp()
                client = ServiceClient(service)

                from repro.service.client import TcpServiceClient

                rude = await TcpServiceClient().connect(host, port)
                rude_job = asyncio.create_task(
                    rude.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=5)
                )
                await asyncio.sleep(0.02)  # let the frame reach the queue
                await rude.close()
                rude_job.cancel()
                try:
                    await rude_job
                except (asyncio.CancelledError, ServiceError):
                    pass

                # The service still answers correctly for everyone else.
                result = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=5
                )
                expected = catalog.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=5,
                )
                assert answer_tuples(result) == answer_tuples(expected)
                health = await client.health()
                assert health["status"] == "ok"
        finally:
            catalog.close()

    asyncio.run(scenario())


def test_deadline_expiry_is_typed_and_skips_execution():
    """An expired deadline yields ``deadline_exceeded``; the dispatcher drops
    the corpse instead of burning backend time on it."""

    async def scenario():
        database, catalog = build_catalog(seed=7002)
        query = extract_query(database.graphs[0].skeleton, 3, rng=2)
        # Window far longer than the deadline: the request must time out in
        # the queue, and the later batch must skip it.
        config = ServiceConfig(batch_window=0.3, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                with pytest.raises(ServiceError) as excinfo:
                    await client.query(
                        query,
                        PROBABILITY_THRESHOLD,
                        DISTANCE_THRESHOLD,
                        rng=3,
                        deadline=0.01,
                    )
                assert excinfo.value.code == DEADLINE_EXCEEDED
                stats = await client.stats()
                assert stats["counters"]["deadline_expired"] == 1
                # An unhurried request on the same service still completes.
                result = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=3
                )
                expected = catalog.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=3,
                )
                assert answer_tuples(result) == answer_tuples(expected)
        finally:
            catalog.close()

    asyncio.run(scenario())


def test_default_deadline_applies_to_requests_without_one():
    async def scenario():
        database, catalog = build_catalog(seed=7003)
        query = extract_query(database.graphs[1].skeleton, 3, rng=4)
        config = ServiceConfig(
            batch_window=0.3, default_deadline=0.01, search_config=SEARCH_CONFIG
        )
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                with pytest.raises(ServiceError) as excinfo:
                    await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=6)
                assert excinfo.value.code == DEADLINE_EXCEEDED
        finally:
            catalog.close()

    asyncio.run(scenario())


def test_sigkilled_pool_worker_recovers_with_identical_answers():
    """SIGKILL a pool worker: the poisoned pool falls back in-process and the
    answers stay byte-identical (determinism is execution-strategy-free)."""

    async def scenario():
        database, catalog = build_catalog(seed=7004, num_shards=2, max_workers=2)
        reference = GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7004,
        )
        query = extract_query(database.graphs[2].skeleton, 3, rng=8)
        config = ServiceConfig(batch_window=0.0, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                # Warm the pool, then murder one of its workers.
                await client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=9)
                planner = catalog._planner()
                assert planner._executor is not None, "pool should be warm"
                victim = next(iter(planner._executor._processes.values()))
                os.kill(victim.pid, signal.SIGKILL)

                result = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=10
                )
                expected = reference.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=10,
                )
                assert answer_tuples(result) == answer_tuples(expected)
                health = await client.health()
                assert health["status"] == "ok"
        finally:
            catalog.close()
            reference.close()

    asyncio.run(scenario())


def test_full_admission_queue_is_typed_and_never_hangs():
    """Submissions beyond ``max_queue_depth`` fail fast with ``overloaded``."""

    async def scenario():
        database, catalog = build_catalog(seed=7005)
        query = extract_query(database.graphs[0].skeleton, 3, rng=11)
        # Big window keeps the first submissions parked in the queue while
        # the overflow submission arrives.
        config = ServiceConfig(
            batch_window=0.3, max_queue_depth=2, search_config=SEARCH_CONFIG
        )
        try:
            async with QueryService(catalog, config) as service:
                client = ServiceClient(service)
                jobs = [
                    asyncio.create_task(
                        client.query(
                            query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=20 + i
                        )
                    )
                    for i in range(2)
                ]
                await asyncio.sleep(0.02)  # both queued, window still open
                overflow = ServiceClient(service)
                with pytest.raises(ServiceError) as excinfo:
                    await asyncio.wait_for(
                        overflow.query(
                            query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=30
                        ),
                        timeout=2.0,  # "never hangs": rejection is immediate
                    )
                assert excinfo.value.code == OVERLOADED
                results = await asyncio.gather(*jobs)  # queued work unharmed
                assert all(result is not None for result in results)
                stats = await client.stats()
                assert stats["counters"]["rejected_overloaded"] == 1
        finally:
            catalog.close()

    asyncio.run(scenario())


def test_graceful_shutdown_mid_batch_drains_then_refuses():
    """stop() during queued traffic: admitted work completes with real
    answers; post-stop submissions get ``shutting_down``."""

    async def scenario():
        database, catalog = build_catalog(seed=7006)
        queries = [extract_query(database.graphs[i].skeleton, 3, rng=40 + i) for i in range(3)]
        config = ServiceConfig(batch_window=0.1, search_config=SEARCH_CONFIG)
        service = await QueryService(catalog, config).start()
        client = ServiceClient(service)
        try:
            jobs = [
                asyncio.create_task(
                    client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=50 + i)
                )
                for i, query in enumerate(queries)
            ]
            await asyncio.sleep(0.02)  # admitted, sitting in the window
            await service.stop()
            results = await asyncio.gather(*jobs)
            for i, (query, result) in enumerate(zip(queries, results)):
                expected = catalog.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=50 + i,
                )
                assert answer_tuples(result) == answer_tuples(expected), f"drained query {i}"
            with pytest.raises(ServiceError) as excinfo:
                await client.query(queries[0], PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=60)
            assert excinfo.value.code == SHUTTING_DOWN
            await service.stop()  # idempotent
        finally:
            catalog.close()

    asyncio.run(scenario())


class TestShardedPlannerCloseRegression:
    """The close() lifecycle fixes: idempotent, concurrent, drain-on-close."""

    def test_double_close_is_a_no_op(self):
        database, catalog = build_catalog(seed=7007, num_shards=2, max_workers=2)
        query = extract_query(database.graphs[0].skeleton, 3, rng=70)
        try:
            catalog.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG, rng=71,
            )
            planner = catalog._planner()
            planner.close()
            planner.close()  # regression: second close must not raise
            assert planner.shard_plane is None
            # the planner keeps working after close (fresh pool + plane)
            catalog.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG, rng=72,
            )
        finally:
            catalog.close()

    def test_concurrent_close_races_are_safe(self):
        database, catalog = build_catalog(seed=7008, num_shards=2, max_workers=2)
        query = extract_query(database.graphs[1].skeleton, 3, rng=73)
        try:
            catalog.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG, rng=74,
            )
            planner = catalog._planner()
            errors = []

            def closer():
                try:
                    planner.close()
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)

            threads = [threading.Thread(target=closer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, f"racing close() raised: {errors}"
        finally:
            catalog.close()

    def test_close_during_inflight_query_drains_not_tears(self):
        """close() racing execute_many: the in-flight workload still returns
        byte-identical answers (pool shutdown waits for submitted tasks)."""
        database, catalog = build_catalog(seed=7009, num_shards=2, max_workers=2)
        reference = GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7009,
        )
        queries = [
            extract_query(database.graphs[i % 6].skeleton, 3, rng=80 + i) for i in range(4)
        ]
        try:
            planner = catalog._planner()
            results: dict[str, object] = {}

            def run_workload():
                results["got"] = planner.execute_many(
                    queries,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    SEARCH_CONFIG,
                    rng=81,
                )

            worker = threading.Thread(target=run_workload)
            worker.start()
            planner.close()  # may land before, during, or after the fan-out
            worker.join()
            expected = reference.query_many(
                queries,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=81,
            )
            for got, want in zip(results["got"], expected):
                assert answer_tuples(got) == answer_tuples(want)
        finally:
            catalog.close()
            reference.close()

    def test_concurrent_submissions_with_close_never_deadlock(self):
        """Submitting threads racing close(): everything completes with the
        right answers and no segment leaks (checked by the autouse fixture)."""
        database, catalog = build_catalog(seed=7010, num_shards=2, max_workers=2)
        reference = GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BOUND_CONFIG,
            rng=7010,
        )
        query = extract_query(database.graphs[3].skeleton, 3, rng=90)
        try:
            planner = catalog._planner()
            outcomes: list = [None] * 3

            def submitter(slot: int):
                outcomes[slot] = planner.execute(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    SEARCH_CONFIG,
                    rng=91 + slot,
                )

            threads = [threading.Thread(target=submitter, args=(slot,)) for slot in range(3)]
            for thread in threads:
                thread.start()
            planner.close()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive(), "submission deadlocked against close()"
            for slot in range(3):
                expected = reference.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=91 + slot,
                )
                assert answer_tuples(outcomes[slot]) == answer_tuples(expected)
        finally:
            catalog.close()
            reference.close()
