"""Service-parity harness: the always-on query service must answer
byte-identically to sequential library-mode calls.

The contract: for any batch window, any max batch size, any interleaving
of concurrent clients, any shard count K ∈ {1, 2, 4}, and any sequence of
catalog mutations applied through the service, a seeded request's answers
(probabilities, ranks, decided_by) and deterministic statistics counters
equal those of ``catalog.query(...)`` / ``catalog.query_top_k(...)`` on a
twin catalog mutated identically.  Micro-batching, the answer cache, and
the wire round-trip must all be invisible in the bytes.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core import GraphCatalog, QueryStatistics, SearchConfig, VerificationConfig
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig
from repro.service import QueryService, ServiceClient, ServiceConfig, TcpServiceClient

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1
FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
BOUND_CONFIG = BoundConfig(num_samples=40)
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)


def random_database(seed: int, num_graphs: int):
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=seed)


def build_twins(seed: int, num_graphs: int = 6, num_shards: int = 1):
    """A service catalog and an identical library-mode reference catalog."""
    database = random_database(seed, num_graphs)
    kwargs = dict(feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=seed)
    if num_shards > 1:
        kwargs.update(num_shards=num_shards, max_workers=0)
    served = GraphCatalog.build(database.graphs, **kwargs)
    twin = GraphCatalog.build(database.graphs, **kwargs)
    return database, served, twin


def answer_tuples(result):
    return [
        (a.graph_id, a.graph_name, a.probability, a.decided_by)
        for a in result.answers
    ]


def counter_dict(statistics: QueryStatistics) -> dict:
    return {
        key: value
        for key, value in statistics.as_dict().items()
        if not key.endswith("seconds")
    }


def assert_result_parity(actual, expected, context: str) -> None:
    assert answer_tuples(actual) == answer_tuples(expected), context
    assert counter_dict(actual.statistics) == counter_dict(expected.statistics), context


def random_workload(database, seed: int, count: int):
    """Seeded mixed requests: (kind, query, params, rng seed) tuples."""
    decider = random.Random(seed)
    requests = []
    for index in range(count):
        query = extract_query(
            database.graphs[decider.randrange(len(database.graphs))].skeleton,
            3,
            rng=seed * 1000 + index,
        )
        rng_seed = seed * 77 + index
        if decider.random() < 0.5:
            requests.append(("query", query, PROBABILITY_THRESHOLD, rng_seed))
        else:
            requests.append(("query_top_k", query, decider.choice([1, 2, 4]), rng_seed))
    return requests


async def run_and_compare(client, twin, requests, context=""):
    """Fire all requests concurrently through the service, compare each to a
    sequential twin-catalog call with the same seed."""

    async def one(kind, query, param, seed):
        if kind == "query":
            return await client.query(query, param, DISTANCE_THRESHOLD, rng=seed)
        return await client.query_top_k(query, param, DISTANCE_THRESHOLD, rng=seed)

    served = await asyncio.gather(*[one(*request) for request in requests])
    for index, ((kind, query, param, seed), actual) in enumerate(zip(requests, served)):
        if kind == "query":
            expected = twin.query(
                query, param, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
            )
        else:
            expected = twin.query_top_k(
                query, param, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
            )
        assert_result_parity(actual, expected, f"{context} request={index} kind={kind}")


@pytest.mark.parametrize("batch_window", [0.0, 0.002, 0.02])
def test_concurrent_mixed_workload_matches_sequential(batch_window):
    """Any batch window: concurrent mixed traffic == sequential twin calls."""

    async def scenario():
        database, served, twin = build_twins(seed=9001)
        config = ServiceConfig(
            batch_window=batch_window, max_batch_size=8, search_config=SEARCH_CONFIG
        )
        try:
            async with QueryService(served, config) as service:
                client = ServiceClient(service)
                await run_and_compare(
                    client,
                    twin,
                    random_workload(database, seed=21, count=8),
                    context=f"window={batch_window}",
                )
        finally:
            served.close()
            twin.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("max_batch_size", [1, 3, 16])
def test_batch_size_never_changes_answers(max_batch_size):
    """Identical workload under different coalescing limits → identical bytes.

    max_batch_size=1 is the no-batching reference; larger limits must not
    shift a single probability even though requests share backend calls."""

    async def scenario():
        database, served, twin = build_twins(seed=9002)
        config = ServiceConfig(
            batch_window=0.005, max_batch_size=max_batch_size, search_config=SEARCH_CONFIG
        )
        try:
            async with QueryService(served, config) as service:
                client = ServiceClient(service)
                await run_and_compare(
                    client,
                    twin,
                    random_workload(database, seed=33, count=6),
                    context=f"max_batch={max_batch_size}",
                )
        finally:
            served.close()
            twin.close()

    asyncio.run(scenario())


@pytest.mark.parametrize("num_shards", [2, 4])
def test_sharded_backend_parity(num_shards):
    """The service over a K-sharded catalog answers like a sequential twin."""

    async def scenario():
        database, served, twin = build_twins(seed=9003, num_shards=num_shards)
        sequential_twin = GraphCatalog.build(
            database.graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=9003
        )
        config = ServiceConfig(batch_window=0.005, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(served, config) as service:
                client = ServiceClient(service)
                requests = random_workload(database, seed=45, count=4)
                await run_and_compare(
                    client, sequential_twin, requests, context=f"shards={num_shards}"
                )
        finally:
            served.close()
            twin.close()
            sequential_twin.close()

    asyncio.run(scenario())


def test_interleaved_mutations_stay_in_parity():
    """Phases of concurrent traffic with service-routed mutations between.

    The twin receives the same mutation sequence through the library API;
    every post-mutation phase must still match byte-for-byte — the answer
    cache must never serve a pre-mutation result (generation keying), and
    queries must never jump the mutation barrier in the dispatch queue."""

    async def scenario():
        database, served, twin = build_twins(seed=9004)
        pool = random_database(10004, num_graphs=4).graphs
        config = ServiceConfig(batch_window=0.005, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(served, config) as service:
                client = ServiceClient(service)

                await run_and_compare(
                    client, twin, random_workload(database, seed=51, count=4), "phase=0"
                )

                added = await client.add_graph(pool[0])
                twin.add_graph(pool[0])
                assert added["external_id"] == 6

                await run_and_compare(
                    client, twin, random_workload(database, seed=52, count=4), "phase=1"
                )

                await client.update_graph(2, pool[1])
                twin.update_graph(2, pool[1])
                await client.remove_graph(0)
                twin.remove_graph(0)

                await run_and_compare(
                    client, twin, random_workload(database, seed=53, count=4), "phase=2"
                )

                await client.compact()
                twin.compact()

                await run_and_compare(
                    client, twin, random_workload(database, seed=54, count=4), "phase=3"
                )
        finally:
            served.close()
            twin.close()

    asyncio.run(scenario())


def test_queries_concurrent_with_mutations_match_some_serialization():
    """Queries racing a mutation get the before- or after-answer, nothing else.

    Unlike the phase-structured test above, queries here are *not* awaited
    before the mutation is submitted, so the dispatcher is free to order
    them on either side of the barrier — but every response must equal the
    twin's answer in one of the two catalog states."""

    async def scenario():
        database, served, twin_before = build_twins(seed=9005)
        pool = random_database(10005, num_graphs=2).graphs
        twin_after = GraphCatalog.build(
            database.graphs, feature_config=FEATURE_CONFIG, bound_config=BOUND_CONFIG, rng=9005
        )
        twin_after.add_graph(pool[0])
        config = ServiceConfig(batch_window=0.002, search_config=SEARCH_CONFIG)
        query = extract_query(database.graphs[0].skeleton, 3, rng=77)
        try:
            async with QueryService(served, config) as service:
                client = ServiceClient(service)
                mutator = ServiceClient(service)
                jobs = [
                    client.query(query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=seed)
                    for seed in (501, 502, 503)
                ]
                jobs.append(mutator.add_graph(pool[0]))
                responses = await asyncio.gather(*jobs)
                for seed, actual in zip((501, 502, 503), responses[:3]):
                    candidates = [
                        twin.query(
                            query,
                            PROBABILITY_THRESHOLD,
                            DISTANCE_THRESHOLD,
                            config=SEARCH_CONFIG,
                            rng=seed,
                        )
                        for twin in (twin_before, twin_after)
                    ]
                    assert answer_tuples(actual) in [
                        answer_tuples(candidate) for candidate in candidates
                    ], f"seed={seed} answers match neither catalog state"
        finally:
            served.close()
            twin_before.close()
            twin_after.close()

    asyncio.run(scenario())


def test_tcp_transport_byte_parity():
    """The NDJSON TCP path carries the same bytes as the in-process path.

    Concurrent coroutines pipeline over one connection; every decoded
    result must match the sequential twin exactly — JSON float round-trip
    (repr shortest form) makes this a true byte-parity check."""

    async def scenario():
        database, served, twin = build_twins(seed=9006)
        config = ServiceConfig(batch_window=0.005, search_config=SEARCH_CONFIG)
        try:
            async with QueryService(served, config) as service:
                host, port = await service.serve_tcp()
                tcp = await TcpServiceClient().connect(host, port)
                try:
                    await run_and_compare(
                        tcp, twin, random_workload(database, seed=61, count=6), "tcp"
                    )
                finally:
                    await tcp.close()
        finally:
            served.close()
            twin.close()

    asyncio.run(scenario())


def test_cached_answers_are_byte_identical():
    """A cache hit returns the exact payload of the original computation."""

    async def scenario():
        database, served, twin = build_twins(seed=9007)
        config = ServiceConfig(batch_window=0.0, search_config=SEARCH_CONFIG)
        query = extract_query(database.graphs[1].skeleton, 3, rng=88)
        try:
            async with QueryService(served, config) as service:
                client = ServiceClient(service)
                first = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=42
                )
                assert client.last_response["cached"] is False
                second = await client.query(
                    query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, rng=42
                )
                assert client.last_response["cached"] is True
                assert answer_tuples(first) == answer_tuples(second)
                assert counter_dict(first.statistics) == counter_dict(second.statistics)
                expected = twin.query(
                    query,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=42,
                )
                assert_result_parity(second, expected, "cached answer")
        finally:
            served.close()
            twin.close()

    asyncio.run(scenario())
