"""Tests for the greedy and exhaustive weighted set cover (tightest Usim)."""

from __future__ import annotations

import pytest

from repro.core.set_cover import (
    SetCoverSolution,
    WeightedSet,
    exhaustive_weighted_set_cover,
    greedy_weighted_set_cover,
)


def ws(set_id, members, weight):
    return WeightedSet(set_id=set_id, members=frozenset(members), weight=weight)


class TestGreedy:
    def test_paper_example3(self):
        """Figure 5: s1={rq1,rq2} w=0.4, s2={rq2,rq3} w=0.1, s3={rq1,rq3} w=0.5.

        The possible covers weigh 0.5 (s1+s2), 0.9 (s1+s3) and 0.6 (s2+s3);
        the tightest Usim is 0.5.
        """
        universe = {"rq1", "rq2", "rq3"}
        sets = [
            ws(1, {"rq1", "rq2"}, 0.4),
            ws(2, {"rq2", "rq3"}, 0.1),
            ws(3, {"rq1", "rq3"}, 0.5),
        ]
        solution = greedy_weighted_set_cover(universe, sets)
        assert solution.covered
        assert solution.total_weight == pytest.approx(0.5)
        assert set(solution.chosen_ids) == {1, 2}

    def test_single_set_cover(self):
        solution = greedy_weighted_set_cover({"a", "b"}, [ws(1, {"a", "b"}, 0.3)])
        assert solution.covered
        assert solution.chosen_ids == (1,)

    def test_uncoverable_universe(self):
        solution = greedy_weighted_set_cover({"a", "b"}, [ws(1, {"a"}, 0.3)])
        assert not solution.covered
        assert solution.chosen_ids == (1,)

    def test_no_candidates(self):
        solution = greedy_weighted_set_cover({"a"}, [])
        assert not solution.covered

    def test_empty_universe_is_trivially_covered(self):
        solution = greedy_weighted_set_cover(set(), [ws(1, {"a"}, 0.5)])
        assert solution.covered
        assert solution.total_weight == 0.0

    def test_greedy_prefers_cheap_per_element_sets(self):
        universe = {1, 2, 3, 4}
        sets = [
            ws(1, {1, 2, 3, 4}, 1.0),
            ws(2, {1, 2}, 0.1),
            ws(3, {3, 4}, 0.1),
        ]
        solution = greedy_weighted_set_cover(universe, sets)
        assert set(solution.chosen_ids) == {2, 3}
        assert solution.total_weight == pytest.approx(0.2)


class TestExhaustive:
    def test_matches_greedy_on_easy_instance(self):
        universe = {"x", "y"}
        sets = [ws(1, {"x"}, 0.2), ws(2, {"y"}, 0.2), ws(3, {"x", "y"}, 0.5)]
        greedy = greedy_weighted_set_cover(universe, sets)
        optimal = exhaustive_weighted_set_cover(universe, sets)
        assert optimal.total_weight <= greedy.total_weight
        assert optimal.total_weight == pytest.approx(0.4)

    def test_optimal_beats_greedy_on_adversarial_instance(self):
        """Classic instance where greedy picks the big set first."""
        universe = {1, 2, 3, 4}
        sets = [
            ws(1, {1, 2, 3}, 0.30),
            ws(2, {1, 2}, 0.21),
            ws(3, {3, 4}, 0.21),
            ws(4, {4}, 0.25),
        ]
        greedy = greedy_weighted_set_cover(universe, sets)
        optimal = exhaustive_weighted_set_cover(universe, sets)
        assert optimal.total_weight <= greedy.total_weight + 1e-12
        assert optimal.total_weight == pytest.approx(0.42)

    def test_uncoverable(self):
        result = exhaustive_weighted_set_cover({1, 2}, [ws(1, {1}, 0.1)])
        assert not result.covered

    def test_instance_size_guard(self):
        sets = [ws(i, {i}, 0.1) for i in range(20)]
        with pytest.raises(ValueError):
            exhaustive_weighted_set_cover(set(range(20)), sets, max_sets=16)

    def test_solution_dataclass_shape(self):
        solution = SetCoverSolution((1,), 0.5, True)
        assert solution.chosen_ids == (1,)
        assert solution.covered
