"""Randomized cross-shard parity harness and determinism regression tests.

The contract under test: for *any* database, workload, shard count K, and
worker count, :class:`ShardedPlanner` answers are **identical** to the
sequential :class:`QueryPlanner` — same accepted set, same pruned set, same
SSP estimates, same answer order, same counters.  The harness generates
seeded random probabilistic databases (odd and even sizes) and random T-PS
workloads, and checks every query under K ∈ {1, 2, 4}.

The determinism regression locks in the per-graph RNG derivation scheme:
two runs with the same seed must produce byte-identical answers and
counters even when ``max_workers`` varies (in-process vs a real process
pool), because every stochastic sub-task seeds itself from
``(root, stage, global graph id)`` rather than from a shared stream.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    ProbabilisticGraphDatabase,
    QueryStatistics,
    SearchConfig,
    ShardedPlanner,
    ShardSpec,
    VerificationConfig,
    partition_ranges,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1

FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
# sampling-based verification on purpose: parity must hold for the
# *stochastic* pipeline, not just the exact one
SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)


def random_database(seed: int, num_graphs: int):
    """A small seeded random probabilistic database."""
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=seed)


def random_workload(database, seed: int, num_queries: int = 3):
    """Seeded random T-PS queries extracted from the database's skeletons."""
    return [
        extract_query(
            database.graphs[index % len(database.graphs)].skeleton,
            3,
            rng=seed + index,
        )
        for index in range(num_queries)
    ]


def answer_tuples(result):
    return [(a.graph_id, a.graph_name, a.probability, a.decided_by) for a in result.answers]


def counter_dict(statistics: QueryStatistics) -> dict:
    """The deterministic (non-timing) fields of one query's statistics."""
    full = statistics.as_dict()
    return {key: value for key, value in full.items() if not key.endswith("_seconds")}


def accepted_and_pruned(result):
    """(accepted-without-verification ids, pruned count) for one query."""
    accepted = {a.graph_id for a in result.answers if a.decided_by == "lower_bound"}
    return accepted, result.statistics.pruned_by_upper_bound


class TestRandomizedCrossShardParity:
    """Sharded answers == sequential answers, over randomized workloads."""

    # odd and even database sizes: 7 does not divide evenly by 2 or 4,
    # 8 splits evenly by both — the two partition edge cases
    @pytest.mark.parametrize("seed,num_graphs", [(101, 7), (202, 8)])
    def test_sharded_matches_sequential(self, seed, num_graphs):
        database = random_database(seed, num_graphs)
        workload = random_workload(database, seed=seed * 3 + 1)

        sequential = ProbabilisticGraphDatabase(database.graphs)
        sequential.build_index(
            feature_config=FEATURE_CONFIG, bound_config=BoundConfig(method="exact"), rng=seed
        )
        sequential_results = sequential.query_many(
            workload, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
        )

        for num_shards in (1, 2, 4):
            sharded = ProbabilisticGraphDatabase(database.graphs)
            sharded.build_index(
                feature_config=FEATURE_CONFIG,
                bound_config=BoundConfig(method="exact"),
                rng=seed,
                num_shards=num_shards,
                max_workers=0,  # in-process: parity must not depend on the pool
            )
            sharded_results = sharded.query_many(
                workload, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
            )

            assert len(sequential_results) == len(sharded_results) == len(workload)
            for sequential_result, sharded_result in zip(sequential_results, sharded_results):
                # answers: ids, names, SSP estimates, decision stage, order
                assert answer_tuples(sequential_result) == answer_tuples(sharded_result)
                # the accept/prune partition itself
                assert accepted_and_pruned(sequential_result) == accepted_and_pruned(
                    sharded_result
                ), num_shards
                # every non-timing counter
                assert counter_dict(sequential_result.statistics) == counter_dict(
                    sharded_result.statistics
                ), num_shards

    def test_sampled_bound_build_parity(self):
        """Parity also holds when the PMI itself is built by Monte-Carlo
        sampling — the per-graph build streams make shard builds identical
        to the sequential build."""
        database = random_database(77, 7)
        workload = random_workload(database, seed=500)
        sampled_bounds = BoundConfig(num_samples=40)

        sequential = ProbabilisticGraphDatabase(database.graphs)
        sequential.build_index(
            feature_config=FEATURE_CONFIG, bound_config=sampled_bounds, rng=9
        )
        sharded = ProbabilisticGraphDatabase(database.graphs)
        sharded.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=sampled_bounds,
            rng=9,
            num_shards=3,
            max_workers=0,
        )
        for query in workload:
            before = sequential.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=4
            )
            after = sharded.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=4
            )
            assert answer_tuples(before) == answer_tuples(after)

    def test_single_query_parity_through_process_pool(self):
        """One end-to-end case through a real process pool (the others run
        in-process to keep the harness fast)."""
        database = random_database(303, 6)
        query = random_workload(database, seed=900, num_queries=1)[0]

        sequential = ProbabilisticGraphDatabase(database.graphs)
        sequential.build_index(
            feature_config=FEATURE_CONFIG, bound_config=BoundConfig(method="exact"), rng=1
        )
        sharded = ProbabilisticGraphDatabase(database.graphs)
        sharded.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=1,
            num_shards=2,
            max_workers=2,
        )
        try:
            before = sequential.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=11
            )
            after = sharded.query(
                query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=11
            )
        finally:
            sharded.close()
        assert answer_tuples(before) == answer_tuples(after)
        assert counter_dict(before.statistics) == counter_dict(after.statistics)


class TestDeterminismRegression:
    """Same seed ⇒ byte-identical results, independent of worker count."""

    def test_query_many_byte_identical_across_worker_counts(self):
        database = random_database(404, 7)
        workload = random_workload(database, seed=40, num_queries=2)

        fingerprints = []
        for max_workers in (0, 1, 2):
            engine = ProbabilisticGraphDatabase(database.graphs)
            engine.build_index(
                feature_config=FEATURE_CONFIG,
                bound_config=BoundConfig(method="exact"),
                rng=21,
                num_shards=2,
                max_workers=max_workers,
            )
            try:
                results = engine.query_many(
                    workload,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=21,
                )
            finally:
                engine.close()
            # answers and non-timing counters, serialized: wall-clock fields
            # are the only legitimately nondeterministic state
            fingerprints.append(
                pickle.dumps(
                    [
                        (tuple(answer_tuples(r)), tuple(sorted(counter_dict(r.statistics).items())))
                        for r in results
                    ]
                )
            )
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_two_runs_same_seed_identical(self):
        database = random_database(505, 6)
        workload = random_workload(database, seed=50, num_queries=2)
        engine = ProbabilisticGraphDatabase(database.graphs)
        engine.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=33,
            num_shards=3,
            max_workers=0,
        )
        first = engine.query_many(
            workload, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=33
        )
        second = engine.query_many(
            workload, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=33
        )
        for a, b in zip(first, second):
            assert pickle.dumps(answer_tuples(a)) == pickle.dumps(answer_tuples(b))


class TestPartitioning:
    def test_balanced_contiguous_partition(self):
        specs = partition_ranges(10, 4)
        assert [spec.size for spec in specs] == [3, 3, 2, 2]
        assert specs[0].start == 0 and specs[-1].stop == 10
        for left, right in zip(specs, specs[1:]):
            assert left.stop == right.start

    def test_more_shards_than_graphs_clamped(self):
        specs = partition_ranges(3, 8)
        assert len(specs) == 3
        assert all(spec.size == 1 for spec in specs)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_ranges(0, 2)
        with pytest.raises(ValueError):
            partition_ranges(5, 0)

    def test_non_contiguous_shards_rejected(self):
        database = random_database(606, 4)
        planner = ShardedPlanner.build(
            database.graphs,
            num_shards=2,
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=2,
            max_workers=0,
        )
        first, second = planner.shards
        with pytest.raises(ValueError):
            ShardedPlanner([second])  # starts at the wrong offset
        with pytest.raises(ValueError):
            ShardedPlanner([first, first])  # overlapping tiles


class TestStatisticsMerge:
    def test_merge_sums_counters_and_maxes_times(self):
        left = QueryStatistics(
            database_size=4,
            structural_candidates=3,
            probabilistic_candidates=2,
            accepted_by_lower_bound=1,
            pruned_by_upper_bound=1,
            verified=1,
            answers=2,
            structural_seconds=0.5,
            probabilistic_seconds=0.25,
            verification_seconds=1.0,
            total_seconds=2.0,
            relaxed_query_count=3,
        )
        right = QueryStatistics(
            database_size=3,
            structural_candidates=2,
            probabilistic_candidates=2,
            accepted_by_lower_bound=0,
            pruned_by_upper_bound=1,
            verified=2,
            answers=1,
            structural_seconds=0.75,
            probabilistic_seconds=0.1,
            verification_seconds=0.5,
            total_seconds=1.5,
            relaxed_query_count=3,
        )
        merged = QueryStatistics.merge([left, right])
        assert merged.database_size == 7
        assert merged.structural_candidates == 5
        assert merged.probabilistic_candidates == 4
        assert merged.accepted_by_lower_bound == 1
        assert merged.pruned_by_upper_bound == 2
        assert merged.verified == 3
        assert merged.answers == 3
        assert merged.structural_seconds == 0.75
        assert merged.probabilistic_seconds == 0.25
        assert merged.verification_seconds == 1.0
        assert merged.total_seconds == 2.0
        assert merged.relaxed_query_count == 3

    def test_merge_of_nothing_is_zero(self):
        merged = QueryStatistics.merge([])
        assert merged.as_dict() == QueryStatistics().as_dict()

    def test_sharded_counters_sum_to_sequential(self):
        """End-to-end: merged shard counters equal the sequential counters."""
        database = random_database(707, 6)
        query = random_workload(database, seed=70, num_queries=1)[0]
        sequential = ProbabilisticGraphDatabase(database.graphs)
        sequential.build_index(
            feature_config=FEATURE_CONFIG, bound_config=BoundConfig(method="exact"), rng=8
        )
        sharded = ProbabilisticGraphDatabase(database.graphs)
        sharded.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=8,
            num_shards=2,
            max_workers=0,
        )
        before = sequential.query(
            query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=2
        )
        after = sharded.query(
            query, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=2
        )
        full_before = before.statistics.as_dict()
        full_after = after.statistics.as_dict()
        for key in full_before:
            if not key.endswith("_seconds"):
                assert full_before[key] == full_after[key], key


class TestShardCache:
    def test_warm_hit_and_staleness_guard(self, tmp_path, monkeypatch):
        """A warm cache is reused only for the exact same build (configs and
        root); a different seed must rebuild rather than serve stale bounds."""
        import numpy as np

        from repro.pmi import ProbabilisticMatrixIndex

        database = random_database(808, 4)
        kwargs = dict(
            num_shards=2,
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(num_samples=30),
            max_workers=0,
            cache_dir=tmp_path,
        )
        cold = ShardedPlanner.build(database.graphs, rng=5, **kwargs)

        # spy on PMI builds: a true warm hit must not rebuild anything —
        # identical arrays alone could also come from a silent cache miss
        rebuilds = []
        original_build = ProbabilisticMatrixIndex.build

        def counting_build(self, *args, **build_kwargs):
            rebuilds.append(1)
            return original_build(self, *args, **build_kwargs)

        monkeypatch.setattr(ProbabilisticMatrixIndex, "build", counting_build)
        warm = ShardedPlanner.build(database.graphs, rng=5, **kwargs)
        monkeypatch.undo()
        assert not rebuilds, "warm build recomputed SIP bounds instead of loading"
        for cold_shard, warm_shard in zip(cold.shards, warm.shards):
            assert np.array_equal(cold_shard.pmi._lower, warm_shard.pmi._lower)
            assert np.array_equal(
                cold_shard.structural_index.counts_matrix(),
                warm_shard.structural_index.counts_matrix(),
            )

        # same cache dir, different seed: must match a cache-less fresh build
        # with that seed, not the cached rng=5 cells
        stale_guarded = ShardedPlanner.build(database.graphs, rng=6, **kwargs)
        fresh = ShardedPlanner.build(
            database.graphs, rng=6, **{**kwargs, "cache_dir": None}
        )
        for guarded_shard, fresh_shard in zip(stale_guarded.shards, fresh.shards):
            assert np.array_equal(guarded_shard.pmi._lower, fresh_shard.pmi._lower)
            assert np.array_equal(guarded_shard.pmi._upper, fresh_shard.pmi._upper)

    def test_edited_probabilities_invalidate_cache(self, tmp_path):
        """Edited edge probabilities leave the skeletons (and thus the mined
        features) unchanged — the graph-content fingerprint must still force
        a rebuild instead of serving the stale bounds."""
        import numpy as np

        from repro.graphs import ProbabilisticGraph

        database = random_database(909, 4)
        kwargs = dict(
            num_shards=2,
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(num_samples=30),
            rng=5,
            max_workers=0,
        )
        ShardedPlanner.build(database.graphs, cache_dir=tmp_path, **kwargs)
        edited = [
            ProbabilisticGraph.from_edge_probabilities(
                graph.skeleton, {key: 0.5 for key in graph.skeleton.edge_keys()}
            )
            for graph in database.graphs
        ]
        guarded = ShardedPlanner.build(edited, cache_dir=tmp_path, **kwargs)
        fresh = ShardedPlanner.build(edited, cache_dir=None, **kwargs)
        for guarded_shard, fresh_shard in zip(guarded.shards, fresh.shards):
            assert np.array_equal(guarded_shard.pmi._lower, fresh_shard.pmi._lower)
            assert np.array_equal(guarded_shard.pmi._upper, fresh_shard.pmi._upper)


class TestShardSpec:
    def test_spec_accessors(self):
        spec = ShardSpec(shard_id=1, start=3, stop=7)
        assert spec.size == 4
        assert list(spec.global_ids()) == [3, 4, 5, 6]
