"""Unit tests for the shared-memory segment manager and arena layout.

Covers :mod:`repro.utils.shm` in isolation — segment lifecycle (create /
attach / unlink / atexit), registration suppression on attach, the flat
arena pack/attach round-trip, lazy graph materialization — plus the
:class:`~repro.core.sharding.ShardPlane` cleanup guarantees: explicit
close, garbage collection, and survival of a SIGKILL'd worker.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.core import ProbabilisticGraphDatabase, SearchConfig, VerificationConfig
from repro.core.sharding import ShardPlane, materialize_shard, publish_shard
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.exceptions import ShmError
from repro.utils import shm
from repro.utils.shm import (
    AttachedArena,
    LazyGraphList,
    ShardArena,
    SkeletonSequence,
    attach_segment,
    create_segment,
    owned_segment_names,
    resident_segment_names,
    unlink_segment,
)

SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=60)
)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test in this file must leave the system segment-clean."""
    before = set(resident_segment_names())
    yield
    gc.collect()
    leaked = set(resident_segment_names()) - before
    assert not leaked, f"test leaked shared-memory segments: {sorted(leaked)}"


def small_database(num_graphs: int = 6, seed: int = 7):
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=seed)


# ----------------------------------------------------------------------
# segment lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_create_registers_and_unlink_removes(self):
        segment = create_segment(128)
        assert segment.name in owned_segment_names()
        assert segment.name in resident_segment_names()
        unlink_segment(segment.name)
        assert segment.name not in owned_segment_names()
        assert segment.name not in resident_segment_names()

    def test_unlink_is_idempotent(self):
        segment = create_segment(64)
        unlink_segment(segment.name)
        unlink_segment(segment.name)  # second call must be a no-op

    def test_zero_byte_segment_is_allowed(self):
        segment = create_segment(0)
        try:
            assert segment.size >= 1  # POSIX forbids empty mappings
        finally:
            unlink_segment(segment.name)

    def test_negative_size_rejected(self):
        with pytest.raises(ShmError):
            create_segment(-1)

    def test_attach_missing_segment_raises(self):
        with pytest.raises(ShmError):
            attach_segment("tpsshm_nonexistent")

    def test_attach_does_not_register_with_resource_tracker(self):
        """An attaching process must never take ownership of the segment.

        A spawn-context child (its *own* resource tracker — the dangerous
        configuration) attaches, reads, and exits; if the attach had
        registered, the child's tracker would unlink the live segment at
        exit.  The segment must survive and stay readable.
        """
        segment = create_segment(16)
        try:
            segment.buf[:5] = b"hello"
            ctx = multiprocessing.get_context("spawn")
            process = ctx.Process(target=_attach_and_exit, args=(segment.name,))
            process.start()
            process.join(timeout=60)
            assert process.exitcode == 0
            # give the child's resource tracker a moment to do its damage,
            # if it were going to
            time.sleep(0.2)
            assert segment.name in resident_segment_names()
            reader = attach_segment(segment.name)
            assert bytes(reader.buf[:5]) == b"hello"
            reader.close()
        finally:
            unlink_segment(segment.name)

    def test_atexit_sweep_unlinks_owned_segments(self):
        segment = create_segment(32)
        assert segment.name in resident_segment_names()
        shm._sweep_owned_segments()
        assert segment.name not in resident_segment_names()


def _attach_and_exit(name: str) -> None:
    reader = attach_segment(name)
    assert bytes(reader.buf[:5]) == b"hello"
    reader.close()


# ----------------------------------------------------------------------
# arena pack / attach round-trip
# ----------------------------------------------------------------------
class TestArenaRoundTrip:
    def test_arrays_and_blobs_round_trip(self):
        arrays = {
            "floats": np.arange(12, dtype=np.float64).reshape(3, 4),
            "flags": np.array([[True, False], [False, True]]),
            "counts": np.arange(6, dtype=np.int32).reshape(2, 3),
            "ids": np.array([5, 7, 11], dtype=np.int64),
            "empty": np.zeros((0, 4), dtype=np.int32),
        }
        blobs = {"meta": pickle.dumps({"k": 1}), "raw": b"payload"}
        arena = ShardArena.pack(arrays, blobs)
        try:
            attached = AttachedArena(arena.descriptor)
            for key, original in arrays.items():
                view = attached.array(key)
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                np.testing.assert_array_equal(view, original)
                assert not view.flags.writeable
            assert pickle.loads(attached.blob("meta")) == {"k": 1}
            assert bytes(attached.blob("raw")) == b"payload"
        finally:
            arena.unlink()

    def test_array_offsets_are_aligned(self):
        arena = ShardArena.pack(
            {"a": np.ones(3, dtype=np.float64), "b": np.ones(5, dtype=np.int32)},
            {"blob": b"xyz"},
        )
        try:
            for entry in arena.descriptor.fields:
                if entry.nbytes:
                    assert entry.offset % 64 == 0
        finally:
            arena.unlink()

    def test_views_are_zero_copy(self):
        """Writes through the owner's segment must show up in the attached
        view — proof the reader maps the same pages instead of copying."""
        source = np.zeros(4, dtype=np.float64)
        arena = ShardArena.pack({"a": source}, {})
        try:
            attached = AttachedArena(arena.descriptor)
            view = attached.array("a")
            assert view[0] == 0.0
            field = arena.descriptor.field("a")
            patch = np.ndarray(
                (4,), dtype=np.float64, buffer=arena._segment.buf, offset=field.offset
            )
            patch[0] = 42.0
            del patch
            assert view[0] == 42.0
        finally:
            arena.unlink()

    def test_unknown_field_raises(self):
        arena = ShardArena.pack({"a": np.ones(2)}, {})
        try:
            attached = AttachedArena(arena.descriptor)
            with pytest.raises(ShmError):
                attached.array("missing")
            with pytest.raises(ShmError):
                attached.blob("a")  # wrong kind
        finally:
            arena.unlink()

    def test_descriptor_contains(self):
        arena = ShardArena.pack({"a": np.ones(2)}, {"b": b"x"})
        try:
            assert "a" in arena.descriptor
            assert "b" in arena.descriptor
            assert "c" not in arena.descriptor
        finally:
            arena.unlink()


# ----------------------------------------------------------------------
# lazy graphs
# ----------------------------------------------------------------------
class TestLazyGraphs:
    def _lazy_list(self, items):
        payloads = [pickle.dumps(item) for item in items]
        offsets = np.concatenate(
            [[0], np.cumsum([len(p) for p in payloads])]
        ).astype(np.int64)
        return LazyGraphList(memoryview(b"".join(payloads)), offsets)

    def test_lazy_materialization_and_cache(self):
        lazy = self._lazy_list(["a", "bb", "ccc"])
        assert len(lazy) == 3
        assert lazy.materialized_count() == 0
        assert lazy[1] == "bb"
        assert lazy.materialized_count() == 1
        assert lazy[1] == "bb"  # cache hit, still one
        assert lazy.materialized_count() == 1
        assert lazy.materialized_bytes() == len(pickle.dumps("bb"))

    def test_negative_index_and_slice(self):
        lazy = self._lazy_list(["a", "bb", "ccc"])
        assert lazy[-1] == "ccc"
        assert lazy[0:2] == ["a", "bb"]
        assert list(lazy) == ["a", "bb", "ccc"]
        with pytest.raises(IndexError):
            lazy[3]

    def test_empty_list(self):
        lazy = self._lazy_list([])
        assert len(lazy) == 0
        assert list(lazy) == []

    def test_skeleton_sequence_stays_lazy(self):
        database = small_database(num_graphs=4)
        payloads = [pickle.dumps(graph) for graph in database.graphs]
        offsets = np.concatenate(
            [[0], np.cumsum([len(p) for p in payloads])]
        ).astype(np.int64)
        lazy = LazyGraphList(memoryview(b"".join(payloads)), offsets)
        skeletons = SkeletonSequence(lazy)
        assert len(skeletons) == 4
        _ = skeletons[2]
        assert lazy.materialized_count() == 1  # only the touched graph


# ----------------------------------------------------------------------
# publish / materialize and plane cleanup
# ----------------------------------------------------------------------
class TestShardPlaneCleanup:
    def _plane(self, max_workers=0):
        database = small_database()
        engine = ProbabilisticGraphDatabase(database.graphs)
        engine.build_index(rng=11, num_shards=2, max_workers=max_workers)
        return engine, ShardPlane(engine.planner.shards)

    def test_publish_materialize_round_trip_in_process(self):
        database = small_database()
        engine = ProbabilisticGraphDatabase(database.graphs)
        engine.build_index(rng=11, num_shards=2, max_workers=0)
        shard = engine.planner.shards[0]
        arena, descriptor = publish_shard(shard)
        try:
            clone = materialize_shard(descriptor)
            assert clone.spec == shard.spec
            np.testing.assert_array_equal(
                clone.pmi.arena_arrays()["lower"], shard.pmi.arena_arrays()["lower"]
            )
            np.testing.assert_array_equal(
                np.asarray(clone.structural_index.counts_matrix()),
                np.asarray(shard.structural_index.counts_matrix()),
            )
            assert len(clone.graphs) == len(shard.graphs)
            assert clone.graphs[0].name == shard.graphs[0].name
            # the clone answers a query identically to the original shard
            query = extract_query(database.graphs[0].skeleton, 3, rng=3)
            expected = shard.make_planner().execute(
                query, 0.3, 1, config=SEARCH_CONFIG, rng=5
            )
            actual = clone.make_planner().execute(
                query, 0.3, 1, config=SEARCH_CONFIG, rng=5
            )
            assert [(a.graph_id, a.probability) for a in actual.answers] == [
                (a.graph_id, a.probability) for a in expected.answers
            ]
        finally:
            arena.unlink()

    def test_close_unlinks_all_segments(self):
        _engine, plane = self._plane()
        names = plane.segment_names()
        assert all(name in resident_segment_names() for name in names)
        plane.close()
        assert plane.closed
        assert not any(name in resident_segment_names() for name in names)
        plane.close()  # idempotent

    def test_gc_unlinks_unclosed_plane(self):
        _engine, plane = self._plane()
        names = plane.segment_names()
        del plane
        gc.collect()
        assert not any(name in resident_segment_names() for name in names)

    def test_planner_close_retires_plane(self):
        database = small_database()
        engine = ProbabilisticGraphDatabase(database.graphs)
        engine.build_index(rng=11, num_shards=2, max_workers=2)
        query = extract_query(database.graphs[0].skeleton, 3, rng=3)
        engine.query(query, 0.3, 1, config=SEARCH_CONFIG, rng=5)
        plane = engine.planner.shard_plane
        assert plane is not None
        names = plane.segment_names()
        assert names
        engine.close()
        assert engine.planner.shard_plane is None
        assert not any(name in resident_segment_names() for name in names)

    def test_sigkilled_worker_leaves_no_orphans(self):
        """SIGKILL one pool worker mid-life: the broken pool falls back to
        in-process execution, answers stay correct, and close() still
        retires every segment — nothing leaks even though the worker died
        without running any cleanup."""
        database = small_database()
        engine = ProbabilisticGraphDatabase(database.graphs)
        engine.build_index(rng=11, num_shards=2, max_workers=2)
        query = extract_query(database.graphs[0].skeleton, 3, rng=3)
        expected = engine.query(query, 0.3, 1, config=SEARCH_CONFIG, rng=5)
        executor = engine.planner._executor
        assert executor is not None
        victim_pid = next(iter(executor._processes))
        os.kill(victim_pid, signal.SIGKILL)
        survived = engine.query(query, 0.3, 1, config=SEARCH_CONFIG, rng=5)
        assert [(a.graph_id, a.probability) for a in survived.answers] == [
            (a.graph_id, a.probability) for a in expected.answers
        ]
        engine.close()
        assert engine.planner.shard_plane is None
