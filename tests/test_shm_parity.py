"""Shared-memory shard-plane parity harness.

The contract under test: attaching shards through ``multiprocessing``
shared memory is *invisible* — answers, probabilities, ranks, and every
per-stage counter are byte-identical to the sequential in-process planner
for any shard count K, any worker count, and across catalog mutations with
mid-stream generation hot-swaps.  The assertions reuse the byte-parity
helpers from ``test_sharding_parity`` / ``test_catalog_parity`` so the shm
plane is held to exactly the same bar as the original fan-out.

Also locked in here: the O(1) initializer-payload regression (descriptors
must not grow with shard bytes), the cheap executor-resize path (the
published plane survives a pool-width change), and generation retirement
(mutations unlink the old segments; the next query publishes a disjoint
set of names).
"""

from __future__ import annotations

import gc
import pickle

import pytest

from test_catalog_parity import (
    apply_random_mutations,
    assert_result_parity,
    rebuild_from_scratch,
)
from test_sharding_parity import (
    FEATURE_CONFIG,
    SEARCH_CONFIG,
    answer_tuples,
    counter_dict,
    random_database,
    random_workload,
)

from repro.core import GraphCatalog, ProbabilisticGraphDatabase, ShardedPlanner
from repro.pmi import BoundConfig
from repro.utils.shm import resident_segment_names

PROBABILITY_THRESHOLD = 0.3
DISTANCE_THRESHOLD = 1


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must leave the system's segment set exactly as it found it."""
    before = set(resident_segment_names())
    yield
    gc.collect()
    leaked = set(resident_segment_names()) - before
    assert not leaked, f"orphaned shared-memory segments: {sorted(leaked)}"


class TestPoolShmParity:
    """shm-attached pool answers == sequential answers, byte for byte."""

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_shm_pool_matches_sequential(self, num_shards):
        database = random_database(8101, 8)
        workload = random_workload(database, seed=8103)

        sequential = ProbabilisticGraphDatabase(database.graphs)
        sequential.build_index(
            feature_config=FEATURE_CONFIG, bound_config=BoundConfig(method="exact"), rng=3
        )
        expected = sequential.query_many(
            workload, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=3
        )

        sharded = ProbabilisticGraphDatabase(database.graphs)
        sharded.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=3,
            num_shards=num_shards,
            max_workers=2,
        )
        try:
            actual = sharded.query_many(
                workload, PROBABILITY_THRESHOLD, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=3
            )
            if num_shards > 1:
                # the pool really ran on attached segments
                plane = sharded.planner.shard_plane
                assert plane is not None and not plane.closed
                assert len(plane.segment_names()) == num_shards
        finally:
            sharded.close()
        for expected_result, actual_result in zip(expected, actual):
            assert answer_tuples(expected_result) == answer_tuples(actual_result)
            assert counter_dict(expected_result.statistics) == counter_dict(
                actual_result.statistics
            )

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_top_k_parity_through_shm_pool(self, k):
        database = random_database(8202, 7)
        query = random_workload(database, seed=8205, num_queries=1)[0]
        sequential = ProbabilisticGraphDatabase(database.graphs)
        sequential.build_index(
            feature_config=FEATURE_CONFIG, bound_config=BoundConfig(method="exact"), rng=5
        )
        sharded = ProbabilisticGraphDatabase(database.graphs)
        sharded.build_index(
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=5,
            num_shards=2,
            max_workers=2,
        )
        try:
            expected = sequential.query_top_k(
                query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=17
            )
            actual = sharded.query_top_k(
                query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=17
            )
        finally:
            sharded.close()
        assert answer_tuples(actual) == answer_tuples(expected)

    def test_shm_and_legacy_pools_byte_identical(self):
        """The legacy O(shard-bytes) pickle path and the shm descriptor path
        drive the exact same computation."""
        database = random_database(8303, 6)
        workload = random_workload(database, seed=8307, num_queries=2)
        fingerprints = []
        for use_shared_memory in (True, False):
            planner = ShardedPlanner.build(
                database.graphs,
                num_shards=2,
                feature_config=FEATURE_CONFIG,
                bound_config=BoundConfig(method="exact"),
                rng=7,
                max_workers=2,
            )
            planner.use_shared_memory = use_shared_memory
            try:
                results = planner.execute_many(
                    workload,
                    PROBABILITY_THRESHOLD,
                    DISTANCE_THRESHOLD,
                    config=SEARCH_CONFIG,
                    rng=7,
                )
            finally:
                planner.close()
            fingerprints.append(
                pickle.dumps(
                    [
                        (
                            tuple(answer_tuples(result)),
                            tuple(sorted(counter_dict(result.statistics).items())),
                        )
                        for result in results
                    ]
                )
            )
        assert fingerprints[0] == fingerprints[1]


class TestGenerationHotSwap:
    """Catalog mutations retire the old generation and republish a new one."""

    @pytest.mark.parametrize("seed", [8401, 8402])
    def test_catalog_fuzz_with_mid_stream_hot_swap(self, seed):
        database = random_database(seed, num_graphs=7)
        pool = random_database(seed + 1000, num_graphs=8).graphs
        from repro.datasets import extract_query

        query = extract_query(database.graphs[0].skeleton, 3, rng=seed)
        catalog = GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(num_samples=40),
            rng=seed,
            num_shards=2,
            max_workers=2,
        )
        try:
            # generation 1 goes live on the first pooled query
            catalog.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            )
            generation_one = set(catalog.active_shm_segments())
            assert len(generation_one) == 2

            # mutations (including compacts) invalidate the cached planner,
            # which unlinks generation 1 — the hot-swap's retire step
            ops = apply_random_mutations(catalog, pool, seed, num_ops=6)
            assert catalog.active_shm_segments() == []
            assert not (generation_one & set(resident_segment_names()))

            # generation 2: fresh disjoint segments, byte-identical answers
            context = f"seed={seed} ops={ops}"
            reference = rebuild_from_scratch(catalog)
            actual = catalog.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            )
            generation_two = set(catalog.active_shm_segments())
            assert generation_two and not (generation_one & generation_two)
            expected = reference.execute(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            )
            assert_result_parity(actual, expected, context)
            for k in (1, 2, 4):
                actual_top = catalog.query_top_k(
                    query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
                )
                expected_top = reference.execute_top_k(
                    query, k, DISTANCE_THRESHOLD, config=SEARCH_CONFIG, rng=seed
                )
                assert answer_tuples(actual_top) == answer_tuples(expected_top), (
                    f"{context} k={k}"
                )
        finally:
            catalog.close()
        assert catalog.active_shm_segments() == []

    def test_compact_hot_swap_is_invisible(self):
        seed = 8501
        database = random_database(seed, num_graphs=6)
        from repro.datasets import extract_query

        query = extract_query(database.graphs[1].skeleton, 3, rng=seed)
        catalog = GraphCatalog.build(
            database.graphs,
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(num_samples=40),
            rng=seed,
            num_shards=2,
            max_workers=2,
        )
        try:
            before = catalog.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            )
            generation_one = set(catalog.active_shm_segments())
            catalog.compact()
            after = catalog.query(
                query,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=seed,
            )
            generation_two = set(catalog.active_shm_segments())
        finally:
            catalog.close()
        assert_result_parity(after, before, "threshold across compact hot-swap")
        assert generation_one and generation_two
        assert not generation_one & generation_two


class TestExecutorResizeAndPayload:
    """The O(1) initializer contract and the cheap pool-resize path."""

    def test_initializer_payload_stays_o1_in_shard_bytes(self):
        """Descriptor payload must not grow with the database; the legacy
        pickled-shards payload does — that asymmetry IS the feature."""
        payloads = {}
        for label, num_graphs in (("small", 6), ("large", 24)):
            planner = ShardedPlanner.build(
                random_database(8601, num_graphs).graphs,
                num_shards=2,
                feature_config=FEATURE_CONFIG,
                bound_config=BoundConfig(method="exact"),
                rng=11,
                max_workers=0,
            )
            try:
                descriptor_bytes = len(
                    pickle.dumps(planner.initializer_payload())
                )
                shard_bytes = planner.shard_plane.shard_bytes()
                legacy_bytes = len(pickle.dumps(planner.shards))
            finally:
                planner.close()
            payloads[label] = (descriptor_bytes, shard_bytes, legacy_bytes)

        small, large = payloads["small"], payloads["large"]
        # 4x the graphs: shard bytes grow, descriptors stay ~flat
        assert large[1] > small[1] * 2
        assert large[0] < small[0] * 1.5
        # and the descriptors are a small fraction of shipping the shards
        assert large[0] < large[2] / 10

    def test_resize_reuses_published_plane(self):
        database = random_database(8702, 8)
        workload = random_workload(database, seed=8703, num_queries=1)
        planner = ShardedPlanner.build(
            database.graphs,
            num_shards=4,
            feature_config=FEATURE_CONFIG,
            bound_config=BoundConfig(method="exact"),
            rng=13,
            max_workers=2,
        )
        try:
            first = planner.execute_many(
                workload,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=13,
            )
            plane = planner.shard_plane
            names = set(plane.segment_names())
            # widen the pool: only the executor is recycled — the same plane
            # object (and the same segments) serves the new workers
            planner.max_workers = 4
            second = planner.execute_many(
                workload,
                PROBABILITY_THRESHOLD,
                DISTANCE_THRESHOLD,
                config=SEARCH_CONFIG,
                rng=13,
            )
            assert planner.shard_plane is plane
            assert set(plane.segment_names()) == names
            assert not plane.closed
        finally:
            planner.close()
        assert planner.shard_plane is None
        for before, after in zip(first, second):
            assert answer_tuples(before) == answer_tuples(after)
            assert counter_dict(before.statistics) == counter_dict(after.statistics)
