"""Tests for SIP bounds (LowerB/UpperB) against exact subgraph isomorphism
probabilities (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import VerificationError
from repro.graphs import LabeledGraph
from repro.pmi import BoundConfig, compute_sip_bounds
from repro.pmi.bounds import exact_sip

from tests.conftest import make_simple_probabilistic_graph


def single_edge_feature(label_u="a", label_v="b", edge_label="x"):
    feature = LabeledGraph(name="f")
    feature.add_vertex(0, label_u)
    feature.add_vertex(1, label_v)
    feature.add_edge(0, 1, edge_label)
    return feature


def path_feature():
    feature = LabeledGraph(name="f-path")
    feature.add_vertex(0, "a")
    feature.add_vertex(1, "b")
    feature.add_vertex(2, "a")
    feature.add_edge(0, 1, "x")
    feature.add_edge(1, 2, "x")
    return feature


class TestExactSip:
    def test_single_edge_feature_probability(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        feature = single_edge_feature()
        # the a-b edge occurs 4 times (square alternating a/b); SIP is the
        # probability at least one of the 4 independent edges exists
        assert exact_sip(graph, feature) == pytest.approx(1 - 0.5**4)

    def test_absent_feature_has_zero_sip(self):
        graph = make_simple_probabilistic_graph()
        feature = single_edge_feature("z", "z", "q")
        assert exact_sip(graph, feature) == 0.0

    def test_size_guard(self, small_ppi_database):
        big = small_ppi_database.graphs[0]
        with pytest.raises(VerificationError):
            exact_sip(big, single_edge_feature(), max_edges=3)


class TestBoundsSandwichExactValue:
    @pytest.mark.parametrize("edge_probability", [0.3, 0.5, 0.8])
    def test_exact_method_bounds_contain_sip(self, edge_probability):
        graph = make_simple_probabilistic_graph(edge_probability=edge_probability)
        feature = single_edge_feature()
        truth = exact_sip(graph, feature)
        bounds = compute_sip_bounds(feature, graph, BoundConfig(method="exact"))
        assert bounds.lower <= truth + 1e-9
        assert bounds.upper >= truth - 1e-9
        assert 0.0 <= bounds.lower <= bounds.upper <= 1.0

    def test_exact_method_on_correlated_graph(self, triangle_graph_001):
        feature = LabeledGraph(name="f")
        feature.add_vertex(0, "a")
        feature.add_vertex(1, "b")
        feature.add_edge(0, 1, "e")
        truth = exact_sip(triangle_graph_001, feature)
        bounds = compute_sip_bounds(feature, triangle_graph_001, BoundConfig(method="exact"))
        assert bounds.lower <= truth + 1e-9 <= bounds.upper + 2e-9

    def test_path_feature_bounds(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        feature = path_feature()
        truth = exact_sip(graph, feature)
        bounds = compute_sip_bounds(feature, graph, BoundConfig(method="exact"))
        assert bounds.lower <= truth + 1e-9
        assert bounds.upper >= truth - 1e-9

    def test_missing_feature_gives_empty_bounds(self):
        graph = make_simple_probabilistic_graph()
        bounds = compute_sip_bounds(single_edge_feature("z", "z"), graph)
        assert bounds.is_empty()
        assert bounds.as_pair() == (0.0, 0.0)


class TestSamplingMethod:
    def test_sampling_bounds_are_probabilities(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        bounds = compute_sip_bounds(
            single_edge_feature(), graph, BoundConfig(method="sampling", num_samples=300), rng=rng
        )
        assert 0.0 <= bounds.lower <= bounds.upper <= 1.0
        assert bounds.num_embeddings == 4
        assert bounds.num_cuts >= 1

    def test_sampling_close_to_exact_bounds(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        feature = single_edge_feature()
        exact_bounds = compute_sip_bounds(feature, graph, BoundConfig(method="exact"))
        sampled_bounds = compute_sip_bounds(
            feature, graph, BoundConfig(method="sampling", num_samples=2500), rng=rng
        )
        assert sampled_bounds.lower == pytest.approx(exact_bounds.lower, abs=0.08)
        assert sampled_bounds.upper == pytest.approx(exact_bounds.upper, abs=0.08)

    def test_unknown_method_rejected(self):
        graph = make_simple_probabilistic_graph()
        with pytest.raises(ValueError):
            compute_sip_bounds(single_edge_feature(), graph, BoundConfig(method="mystery"))


class TestOptVsPlainBounds:
    def test_opt_bounds_are_at_least_as_tight(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        feature = single_edge_feature()
        opt = compute_sip_bounds(feature, graph, BoundConfig(method="exact", optimize=True))
        plain = compute_sip_bounds(feature, graph, BoundConfig(method="exact", optimize=False))
        assert opt.lower >= plain.lower - 1e-9
        assert opt.upper <= plain.upper + 1e-9

    def test_config_sample_count_resolution(self):
        assert BoundConfig(num_samples=123).resolved_sample_count() == 123
        assert BoundConfig(num_samples=None, xi=0.05, tau=0.1).resolved_sample_count() > 100
