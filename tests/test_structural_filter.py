"""Tests for the structural (deterministic) pruning stage (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.datasets import extract_query
from repro.exceptions import StateError
from repro.isomorphism import is_subgraph_similar
from repro.pmi import FeatureMiner, FeatureSelectionConfig
from repro.structural import StructuralFeatureIndex, StructuralFilter


@pytest.fixture(scope="module")
def structural_setup(small_ppi_database):
    skeletons = [graph.skeleton for graph in small_ppi_database.graphs]
    features = FeatureMiner(
        FeatureSelectionConfig(alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=12)
    ).mine(small_ppi_database.graphs)
    index = StructuralFeatureIndex().build(skeletons, features)
    return index, skeletons, small_ppi_database


class TestFeatureIndex:
    def test_counts_are_nonnegative(self, structural_setup):
        index, skeletons, _ = structural_setup
        for graph_id in index.graph_ids():
            for count in index.counts_for_graph(graph_id).values():
                assert count > 0

    def test_query_profile_shape(self, structural_setup):
        index, skeletons, _ = structural_setup
        query = extract_query(skeletons[0], 4, rng=3)
        profile = index.query_profile(query)
        for stats in profile.values():
            assert stats["count"] >= 1
            assert stats["max_hits_per_edge"] >= 1

    def test_unbuilt_filter_rejected(self, structural_setup):
        _, skeletons, _ = structural_setup
        with pytest.raises(StateError):
            StructuralFilter(StructuralFeatureIndex(), skeletons)

    def test_subset_counts_match_source_rows(self, structural_setup):
        index, _, _ = structural_setup
        sub = index.subset(range(2, 5))
        assert sub.num_graphs == 3
        assert [f.feature_id for f in sub.features] == [f.feature_id for f in index.features]
        for new_id, old_id in enumerate(range(2, 5)):
            assert sub.counts_for_graph(new_id) == index.counts_for_graph(old_id)

    def test_subset_rejects_unknown_or_unbuilt(self, structural_setup):
        index, _, _ = structural_setup
        with pytest.raises(ValueError):
            index.subset([0, 9999])
        with pytest.raises(StateError):
            StructuralFeatureIndex().subset([0])


class TestFilterSoundness:
    def test_source_graph_survives(self, structural_setup):
        """A query extracted from graph i must keep graph i as a candidate."""
        index, skeletons, _ = structural_setup
        structural_filter = StructuralFilter(index, skeletons)
        for source in range(3):
            query = extract_query(skeletons[source], 4, rng=source + 10)
            result = structural_filter.filter(query, distance_threshold=1)
            assert source in result.candidate_ids

    def test_no_false_dismissals(self, structural_setup):
        """Any graph that is truly subgraph-similar must never be pruned."""
        index, skeletons, _ = structural_setup
        structural_filter = StructuralFilter(index, skeletons)
        query = extract_query(skeletons[1], 4, rng=21)
        result = structural_filter.filter(query, distance_threshold=2)
        pruned = set(result.pruned_ids)
        for graph_id, skeleton in enumerate(skeletons):
            if graph_id in pruned:
                assert not is_subgraph_similar(query, skeleton, 2)

    def test_candidates_and_pruned_partition_database(self, structural_setup):
        index, skeletons, _ = structural_setup
        structural_filter = StructuralFilter(index, skeletons)
        query = extract_query(skeletons[2], 5, rng=4)
        result = structural_filter.filter(query, distance_threshold=1)
        assert sorted(result.candidate_ids + result.pruned_ids) == list(range(len(skeletons)))
        assert result.candidate_count == len(result.candidate_ids)
        assert result.seconds >= 0.0

    def test_larger_threshold_prunes_no_more(self, structural_setup):
        index, skeletons, _ = structural_setup
        structural_filter = StructuralFilter(index, skeletons)
        query = extract_query(skeletons[0], 5, rng=17)
        tight = structural_filter.filter(query, distance_threshold=1)
        loose = structural_filter.filter(query, distance_threshold=3)
        assert set(tight.candidate_ids) <= set(loose.candidate_ids)

    def test_exact_check_mode_is_a_subset(self, structural_setup):
        index, skeletons, _ = structural_setup
        query = extract_query(skeletons[0], 4, rng=8)
        plain = StructuralFilter(index, skeletons).filter(query, 1)
        exact = StructuralFilter(index, skeletons, exact_check=True).filter(query, 1)
        assert set(exact.candidate_ids) <= set(plain.candidate_ids)
        # exactness: every exact candidate really is subgraph-similar
        for graph_id in exact.candidate_ids:
            assert is_subgraph_similar(query, skeletons[graph_id], 1)
