"""Top-k parity harness.

Two contracts under test:

1. **Reference parity** — pipeline ``query_top_k`` answers (graph ids *and*
   probabilities) equal the index-free ``ExactScanBaseline.top_k`` reference,
   which verifies every graph and ranks by ``(-probability, graph_id)``.
   Randomized databases, K shards ∈ {1, 2, 4}, k ∈ {1, 3, len(db)}.  Exact
   SIP bounds + exact verification keep the pruning provably sound, so the
   two sides must agree exactly.
2. **Cross-shard merge invariant** — sharded top-k is byte-identical to the
   sequential planner for any shard/worker count, *including stochastic
   (sampling) verification*: the merge replays the sequential loop over
   per-graph-seeded estimates, so it never depends on which process verified
   what.
"""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.exact_scan import ExactScanBaseline, ExactScanConfig
from repro.core import (
    ProbabilisticGraphDatabase,
    SearchConfig,
    VerificationConfig,
)
from repro.datasets import PPIDatasetConfig, extract_query, generate_ppi_database
from repro.pmi import BoundConfig, FeatureSelectionConfig

DISTANCE_THRESHOLD = 1

FEATURE_CONFIG = FeatureSelectionConfig(
    alpha=0.1, beta=0.2, gamma=0.1, max_vertices=3, max_features=10
)
EXACT_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="inclusion_exclusion")
)
EXACT_SCAN_CONFIG = ExactScanConfig(
    method="inclusion_exclusion",
    verification=VerificationConfig(method="inclusion_exclusion"),
)
# stochastic verification on purpose: the merge invariant must hold for the
# sampled pipeline too, not just the exact one
SAMPLING_SEARCH_CONFIG = SearchConfig(
    verification=VerificationConfig(method="sampling", num_samples=80)
)


def random_database(seed: int, num_graphs: int):
    config = PPIDatasetConfig(
        num_graphs=num_graphs,
        num_families=2,
        vertices_per_graph=8,
        edges_per_graph=9,
        motif_vertices=3,
        motif_edges=3,
        mean_edge_probability=0.6,
        probability_spread=0.2,
    )
    return generate_ppi_database(config, rng=seed)


def random_workload(database, seed: int, num_queries: int = 3):
    return [
        extract_query(
            database.graphs[index % len(database.graphs)].skeleton,
            3,
            rng=seed + index,
        )
        for index in range(num_queries)
    ]


def answer_tuples(result):
    return [
        (a.graph_id, a.graph_name, a.probability, a.decided_by) for a in result.answers
    ]


def build_engine(graphs, seed, num_shards=1, max_workers=0):
    engine = ProbabilisticGraphDatabase(graphs)
    engine.build_index(
        feature_config=FEATURE_CONFIG,
        bound_config=BoundConfig(method="exact"),
        rng=seed,
        num_shards=num_shards,
        max_workers=max_workers,
    )
    return engine


class TestReferenceParity:
    """Pipeline top-k == exhaustive exact-scan top-k, randomized."""

    @pytest.mark.parametrize("seed,num_graphs", [(111, 7), (222, 8)])
    def test_top_k_matches_exact_scan_reference(self, seed, num_graphs):
        database = random_database(seed, num_graphs)
        workload = random_workload(database, seed=seed * 5 + 1)
        reference = ExactScanBaseline(database.graphs, EXACT_SCAN_CONFIG)
        engines = {
            num_shards: build_engine(database.graphs, seed, num_shards=num_shards)
            for num_shards in (1, 2, 4)
        }
        for query_index, query in enumerate(workload):
            for k in (1, 3, num_graphs):
                expected = reference.top_k(query, k, DISTANCE_THRESHOLD, rng=seed)
                expected_tuples = [
                    (a.graph_id, a.probability) for a in expected.answers
                ]
                for num_shards, engine in engines.items():
                    result = engine.query_top_k(
                        query, k, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=seed
                    )
                    assert [
                        (a.graph_id, a.probability) for a in result.answers
                    ] == expected_tuples, (query_index, k, num_shards)

    def test_k_larger_than_matches_returns_all_positive(self):
        database = random_database(333, 6)
        query = random_workload(database, seed=90, num_queries=1)[0]
        engine = build_engine(database.graphs, 333)
        huge = engine.query_top_k(
            query, len(database.graphs), DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=2
        )
        reference = ExactScanBaseline(database.graphs, EXACT_SCAN_CONFIG).top_k(
            query, len(database.graphs), DISTANCE_THRESHOLD, rng=2
        )
        assert [(a.graph_id, a.probability) for a in huge.answers] == [
            (a.graph_id, a.probability) for a in reference.answers
        ]
        assert all(a.probability > 0.0 for a in huge.answers)

    def test_top_k_is_prefix_of_threshold_ranking(self):
        """Top-k answers are exactly the k best answers a permissive
        threshold query returns (same order, same probabilities)."""
        database = random_database(444, 7)
        query = random_workload(database, seed=41, num_queries=1)[0]
        engine = build_engine(database.graphs, 444)
        k = 3
        top = engine.query_top_k(
            query, k, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=7
        )
        threshold = engine.query(
            query, 1e-9, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=7
        )
        assert answer_tuples(top) == answer_tuples(threshold)[: len(top.answers)]


class TestCrossShardMergeInvariant:
    """Sharded top-k ≡ sequential top-k, byte for byte."""

    @pytest.mark.parametrize("seed,num_graphs", [(555, 7), (666, 8)])
    def test_sharded_byte_identical_to_sequential_with_sampling(self, seed, num_graphs):
        database = random_database(seed, num_graphs)
        workload = random_workload(database, seed=seed * 7 + 3)
        sequential = build_engine(database.graphs, seed)
        for k in (1, 3, num_graphs):
            expected = [
                pickle.dumps(
                    answer_tuples(
                        sequential.query_top_k(
                            query, k, DISTANCE_THRESHOLD, config=SAMPLING_SEARCH_CONFIG, rng=seed
                        )
                    )
                )
                for query in workload
            ]
            for num_shards in (2, 4):
                sharded = build_engine(database.graphs, seed, num_shards=num_shards)
                results = sharded.query_top_k_many(
                    workload, k, DISTANCE_THRESHOLD, config=SAMPLING_SEARCH_CONFIG, rng=seed
                )
                assert [
                    pickle.dumps(answer_tuples(result)) for result in results
                ] == expected, (k, num_shards)

    def test_worker_count_does_not_change_answers(self):
        database = random_database(777, 6)
        query = random_workload(database, seed=71, num_queries=1)[0]
        fingerprints = []
        for max_workers in (0, 1, 2):
            engine = build_engine(
                database.graphs, 777, num_shards=2, max_workers=max_workers
            )
            try:
                result = engine.query_top_k(
                    query, 3, DISTANCE_THRESHOLD, config=SAMPLING_SEARCH_CONFIG, rng=13
                )
            finally:
                engine.close()
            fingerprints.append(pickle.dumps(answer_tuples(result)))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_same_seed_same_answers(self):
        database = random_database(888, 7)
        query = random_workload(database, seed=81, num_queries=1)[0]
        engine = build_engine(database.graphs, 888, num_shards=3)
        first = engine.query_top_k(
            query, 2, DISTANCE_THRESHOLD, config=SAMPLING_SEARCH_CONFIG, rng=5
        )
        second = engine.query_top_k(
            query, 2, DISTANCE_THRESHOLD, config=SAMPLING_SEARCH_CONFIG, rng=5
        )
        assert answer_tuples(first) == answer_tuples(second)

    def test_merged_statistics_report_shard_work(self):
        """Shard floors are laxer than the sequential one, so the merged
        ``verified`` counter may exceed sequential — but the answer counters
        and stage list must stay coherent."""
        database = random_database(999, 8)
        query = random_workload(database, seed=91, num_queries=1)[0]
        sequential = build_engine(database.graphs, 999)
        sharded = build_engine(database.graphs, 999, num_shards=4)
        sequential_result = sequential.query_top_k(
            query, 2, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=3
        )
        sharded_result = sharded.query_top_k(
            query, 2, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=3
        )
        assert answer_tuples(sequential_result) == answer_tuples(sharded_result)
        stats = sharded_result.statistics
        assert stats.database_size == len(database.graphs)
        assert stats.answers == len(sharded_result.answers)
        assert stats.verified >= sequential_result.statistics.verified
        assert [s.stage for s in stats.stages] == [
            "structural_filter",
            "pmi_pruning",
            "verification",
        ]


class TestTopKPruningEffectiveness:
    def test_dynamic_floor_skips_verifications(self):
        """With k much smaller than the candidate set, the tightening floor
        must verify no more graphs than the full threshold scan — and the
        skipped candidates show up in the verification stage's counters."""
        database = random_database(1234, 8)
        query = random_workload(database, seed=21, num_queries=1)[0]
        engine = build_engine(database.graphs, 1234)
        scan = engine.query(
            query, 1e-9, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=7
        )
        top = engine.query_top_k(
            query, 1, DISTANCE_THRESHOLD, config=EXACT_SEARCH_CONFIG, rng=7
        )
        assert top.statistics.verified <= scan.statistics.verified
        verification_stage = top.statistics.stages[-1]
        assert (
            verification_stage.pruned
            == verification_stage.examined - top.statistics.verified
        )
