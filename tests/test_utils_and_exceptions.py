"""Tests for utilities (rng, timer) and the exception hierarchy."""

from __future__ import annotations

import random
import time

import pytest

from repro import exceptions
from repro.utils import Timer, ensure_rng
from repro.utils.rng import spawn_rng


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_seed_is_reproducible(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_existing_generator_passthrough(self):
        generator = random.Random(1)
        assert ensure_rng(generator) is generator

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_rng_streams_are_independent(self):
        parent = random.Random(3)
        child_a = spawn_rng(parent, salt=1)
        child_b = spawn_rng(parent, salt=2)
        assert child_a.random() != child_b.random()


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exceptions.GraphError,
            exceptions.ProbabilityError,
            exceptions.FactorError,
            exceptions.IndexError_,
            exceptions.QueryError,
            exceptions.VerificationError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, exceptions.ReproError)

    def test_factor_error_is_probability_error(self):
        assert issubclass(exceptions.FactorError, exceptions.ProbabilityError)

    def test_vertex_not_found_carries_vertex(self):
        error = exceptions.VertexNotFoundError(42)
        assert error.vertex == 42
        assert "42" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = exceptions.EdgeNotFoundError(1, 2)
        assert (error.u, error.v) == (1, 2)
