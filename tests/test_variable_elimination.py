"""Tests for exact marginal computation over neighbor-edge factors."""

from __future__ import annotations

import pytest

from repro.exceptions import ProbabilityError
from repro.graphs import enumerate_possible_worlds
from repro.probability import VariableEliminationEngine

from tests.conftest import make_simple_probabilistic_graph


def brute_force_probability(graph, evidence):
    """Ground-truth marginal by world enumeration."""
    total = 0.0
    for world in enumerate_possible_worlds(graph):
        assignment = world.assignment_dict()
        if all(assignment[key] == value for key, value in evidence.items()):
            total += world.probability
    return total


class TestSingleEdgeMarginals:
    def test_independent_graph(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.3)
        engine = VariableEliminationEngine(graph)
        key = graph.edge_variables()[0]
        assert engine.probability_of_event({key: 1}) == pytest.approx(0.3)
        assert engine.probability_of_event({key: 0}) == pytest.approx(0.7)

    def test_correlated_triangle(self, triangle_graph_001):
        engine = VariableEliminationEngine(triangle_graph_001)
        for key in triangle_graph_001.edge_variables():
            expected = brute_force_probability(triangle_graph_001, {key: 1})
            assert engine.probability_of_event({key: 1}) == pytest.approx(expected)


class TestJointEvents:
    def test_all_present_independent(self):
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        engine = VariableEliminationEngine(graph)
        edges = graph.edge_variables()
        assert engine.probability_all_present(edges) == pytest.approx(0.5 ** len(edges))

    def test_mixed_evidence_matches_enumeration(self, triangle_graph_001):
        engine = VariableEliminationEngine(triangle_graph_001)
        edges = triangle_graph_001.edge_variables()
        evidence = {edges[0]: 1, edges[1]: 0}
        expected = brute_force_probability(triangle_graph_001, evidence)
        assert engine.probability_of_event(evidence) == pytest.approx(expected)

    def test_overlapping_factors_match_enumeration(self, overlap_graph_002):
        engine = VariableEliminationEngine(overlap_graph_002)
        edges = overlap_graph_002.edge_variables()
        for evidence in ({edges[0]: 1}, {edges[2]: 1, edges[3]: 1}, {e: 1 for e in edges}):
            expected = brute_force_probability(overlap_graph_002, evidence)
            assert engine.probability_of_event(evidence) == pytest.approx(expected, abs=1e-9)

    def test_empty_evidence_is_one(self, triangle_graph_001):
        engine = VariableEliminationEngine(triangle_graph_001)
        assert engine.probability_of_event({}) == pytest.approx(1.0)

    def test_unknown_edge_rejected(self, triangle_graph_001):
        engine = VariableEliminationEngine(triangle_graph_001)
        with pytest.raises(ProbabilityError):
            engine.probability_of_event({(9, 10): 1})

    def test_result_is_a_probability(self, small_ppi_database):
        graph = small_ppi_database.graphs[0]
        engine = VariableEliminationEngine(graph)
        edges = graph.edge_variables()[:4]
        value = engine.probability_all_present(edges)
        assert 0.0 <= value <= 1.0
