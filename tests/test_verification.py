"""Tests for SSP verification (exact, enumeration and the SMP sampler)."""

from __future__ import annotations

import pytest

from repro.core import VerificationConfig, Verifier
from repro.exceptions import VerificationError
from repro.graphs import LabeledGraph

from tests.conftest import make_simple_probabilistic_graph


def path_query():
    query = LabeledGraph(name="q")
    query.add_vertex(0, "a")
    query.add_vertex(1, "b")
    query.add_vertex(2, "a")
    query.add_edge(0, 1, "x")
    query.add_edge(1, 2, "x")
    return query


class TestEnumerationGroundTruth:
    def test_enumeration_matches_hand_computation(self):
        """Query = single a-b edge, distance 0: SSP = Pr(at least one of the
        four a-b edges is present) = 1 - (1-p)^4."""
        graph = make_simple_probabilistic_graph(edge_probability=0.5)
        query = LabeledGraph()
        query.add_vertex(0, "a")
        query.add_vertex(1, "b")
        query.add_edge(0, 1, "x")
        verifier = Verifier(VerificationConfig(method="enumeration"))
        ssp = verifier.subgraph_similarity_probability(query, graph, 0)
        assert ssp == pytest.approx(1 - 0.5**4)

    def test_enumeration_size_guard(self, small_ppi_database):
        verifier = Verifier(VerificationConfig(method="enumeration", max_enumeration_edges=4))
        with pytest.raises(VerificationError):
            verifier.subgraph_similarity_probability(
                path_query(), small_ppi_database.graphs[0], 1
            )


class TestExactInclusionExclusion:
    @pytest.mark.parametrize("delta", [0, 1])
    def test_matches_enumeration(self, delta):
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        query = path_query()
        exact = Verifier(VerificationConfig(method="inclusion_exclusion"))
        brute = Verifier(VerificationConfig(method="enumeration"))
        assert exact.subgraph_similarity_probability(query, graph, delta) == pytest.approx(
            brute.subgraph_similarity_probability(query, graph, delta), abs=1e-9
        )

    def test_matches_enumeration_on_correlated_graph(self, triangle_graph_001):
        query = LabeledGraph()
        query.add_vertex(0, "a")
        query.add_vertex(1, "b")
        query.add_vertex(2, "c")
        query.add_edge(0, 1, "e")
        query.add_edge(1, 2, "e")
        exact = Verifier(VerificationConfig(method="inclusion_exclusion"))
        brute = Verifier(VerificationConfig(method="enumeration"))
        for delta in (0, 1):
            assert exact.subgraph_similarity_probability(
                query, triangle_graph_001, delta
            ) == pytest.approx(
                brute.subgraph_similarity_probability(query, triangle_graph_001, delta),
                abs=1e-9,
            )

    def test_zero_probability_when_query_label_missing(self):
        graph = make_simple_probabilistic_graph()
        query = LabeledGraph()
        query.add_vertex(0, "zz")
        query.add_vertex(1, "zz")
        query.add_edge(0, 1, "q")
        verifier = Verifier(VerificationConfig(method="inclusion_exclusion"))
        assert verifier.subgraph_similarity_probability(query, graph, 0) == 0.0


class TestSamplingVerifier:
    def test_sampler_close_to_exact(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        query = path_query()
        exact = Verifier(VerificationConfig(method="inclusion_exclusion"))
        sampler = Verifier(VerificationConfig(method="sampling", num_samples=4000), rng=rng)
        truth = exact.subgraph_similarity_probability(query, graph, 1)
        estimate = sampler.subgraph_similarity_probability(query, graph, 1)
        assert estimate == pytest.approx(truth, abs=0.05)

    def test_sampler_on_correlated_graph(self, triangle_graph_001, rng):
        query = LabeledGraph()
        query.add_vertex(0, "a")
        query.add_vertex(1, "b")
        query.add_edge(0, 1, "e")
        exact = Verifier(VerificationConfig(method="inclusion_exclusion"))
        sampler = Verifier(VerificationConfig(method="sampling", num_samples=4000), rng=rng)
        truth = exact.subgraph_similarity_probability(query, triangle_graph_001, 0)
        estimate = sampler.subgraph_similarity_probability(query, triangle_graph_001, 0)
        assert estimate == pytest.approx(truth, abs=0.05)

    def test_matches_predicate(self, rng):
        graph = make_simple_probabilistic_graph(edge_probability=0.6)
        verifier = Verifier(VerificationConfig(method="inclusion_exclusion"), rng=rng)
        is_answer, probability = verifier.matches(path_query(), graph, 0.05, 1)
        assert is_answer
        assert probability > 0.05
        is_answer_high, _ = verifier.matches(path_query(), graph, 0.999, 1)
        assert not is_answer_high

    def test_unknown_method_rejected(self):
        graph = make_simple_probabilistic_graph()
        verifier = Verifier(VerificationConfig(method="bogus"))
        with pytest.raises(VerificationError):
            verifier.subgraph_similarity_probability(path_query(), graph, 1)
