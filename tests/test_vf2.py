"""Tests for the VF2-style labeled subgraph isomorphism matcher."""

from __future__ import annotations

from repro.graphs import LabeledGraph
from repro.isomorphism import VF2Matcher, find_isomorphism_mapping, is_subgraph_isomorphic


def build(vertex_labels, edges):
    return LabeledGraph.from_edges(vertex_labels, edges)


class TestBasicMatching:
    def test_single_edge_in_triangle(self):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "x")])
        target = build(
            {0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )
        assert is_subgraph_isomorphic(pattern, target)

    def test_label_mismatch_fails(self):
        pattern = build({0: "a", 1: "z"}, [(0, 1, "x")])
        target = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert not is_subgraph_isomorphic(pattern, target)

    def test_edge_label_mismatch_fails(self):
        pattern = build({0: "a", 1: "b"}, [(0, 1, "y")])
        target = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert not is_subgraph_isomorphic(pattern, target)

    def test_pattern_larger_than_target_fails(self):
        pattern = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (1, 2, "x")])
        target = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert not is_subgraph_isomorphic(pattern, target)

    def test_graph_is_subgraph_of_itself(self):
        graph = build({0: "a", 1: "b", 2: "a"}, [(0, 1, "x"), (1, 2, "y")])
        assert is_subgraph_isomorphic(graph, graph)

    def test_empty_pattern_matches_everything(self):
        assert is_subgraph_isomorphic(LabeledGraph(), build({0: "a"}, []))

    def test_non_induced_semantics(self):
        """Definition 5 only requires pattern edges to exist; extra target
        edges among mapped vertices are fine."""
        pattern = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])  # path
        target = build(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )  # triangle
        assert is_subgraph_isomorphic(pattern, target)

    def test_triangle_not_in_path(self):
        triangle = build(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )
        path = build({0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x")])
        assert not is_subgraph_isomorphic(triangle, path)

    def test_disconnected_pattern(self):
        pattern = build({0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1, "x"), (2, 3, "y")])
        target = build(
            {0: "a", 1: "b", 2: "c", 3: "d", 4: "e"},
            [(0, 1, "x"), (2, 3, "y"), (3, 4, "z")],
        )
        assert is_subgraph_isomorphic(pattern, target)

    def test_label_insensitive_mode(self):
        pattern = build({0: "a", 1: "z"}, [(0, 1, "q")])
        target = build({0: "c", 1: "d"}, [(0, 1, "x")])
        assert is_subgraph_isomorphic(pattern, target, label_sensitive=False)
        assert not is_subgraph_isomorphic(pattern, target, label_sensitive=True)


class TestMappings:
    def test_mapping_is_a_valid_witness(self):
        pattern = build({0: "a", 1: "b", 2: "c"}, [(0, 1, "x"), (1, 2, "y")])
        target = build(
            {10: "a", 11: "b", 12: "c", 13: "d"},
            [(10, 11, "x"), (11, 12, "y"), (12, 13, "z")],
        )
        mapping = find_isomorphism_mapping(pattern, target)
        assert mapping is not None
        assert len(set(mapping.values())) == pattern.num_vertices
        for u, v in pattern.edge_keys():
            assert target.has_edge(mapping[u], mapping[v])
            assert target.edge_label(mapping[u], mapping[v]) == pattern.edge_label(u, v)
        for vertex in pattern.vertices():
            assert target.vertex_label(mapping[vertex]) == pattern.vertex_label(vertex)

    def test_no_mapping_when_impossible(self):
        pattern = build({0: "a", 1: "q"}, [(0, 1, "x")])
        target = build({0: "a", 1: "b"}, [(0, 1, "x")])
        assert find_isomorphism_mapping(pattern, target) is None

    def test_all_mappings_count_in_symmetric_target(self):
        # a single labeled edge a-a in a triangle of 'a' vertices: 3 edges x 2
        # orientations = 6 injective mappings
        pattern = build({0: "a", 1: "a"}, [(0, 1, "x")])
        target = build(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )
        matcher = VF2Matcher(pattern, target)
        assert len(matcher.all_mappings()) == 6

    def test_all_mappings_respects_limit(self):
        pattern = build({0: "a", 1: "a"}, [(0, 1, "x")])
        target = build(
            {0: "a", 1: "a", 2: "a"}, [(0, 1, "x"), (1, 2, "x"), (0, 2, "x")]
        )
        matcher = VF2Matcher(pattern, target)
        assert len(matcher.all_mappings(limit=2)) == 2

    def test_empty_mapping_for_empty_pattern(self):
        assert find_isomorphism_mapping(LabeledGraph(), build({0: "a"}, [])) == {}
