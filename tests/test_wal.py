"""Unit tests for the write-ahead log: record format, torn-tail truncation,
and the damage conditions that must raise instead of silently losing data."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core.wal import WAL_FORMAT_VERSION, WriteAheadLog, wal_filename
from repro.exceptions import CatalogError, WalError


def encode(record: dict) -> bytes:
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    return f"{zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode() + body + b"\n"


class TestLifecycle:
    def test_create_append_open_roundtrip(self, tmp_path):
        path = tmp_path / wal_filename(0)
        wal = WriteAheadLog.create(path, 0)
        assert wal.record_count == 1  # the header
        assert wal.append({"op": "add", "external_id": 4}) == 1
        assert wal.append({"op": "remove", "external_id": 4}) == 2
        wal.close()

        reopened, records = WriteAheadLog.open(path, generation=0)
        assert [r["op"] for r in records] == ["add", "remove"]
        assert [r["lsn"] for r in records] == [1, 2]
        assert reopened.record_count == 3

    def test_append_after_open_continues_the_sequence(self, tmp_path):
        path = tmp_path / wal_filename(0)
        wal = WriteAheadLog.create(path, 0)
        wal.append({"op": "add", "external_id": 1})
        wal.close()
        reopened, _ = WriteAheadLog.open(path)
        assert reopened.append({"op": "add", "external_id": 2}) == 2
        reopened.close()
        _, records = WriteAheadLog.open(path)
        assert [r["lsn"] for r in records] == [1, 2]

    def test_create_truncates_debris_from_a_crashed_attempt(self, tmp_path):
        path = tmp_path / wal_filename(3)
        path.write_bytes(b"leftover garbage from a crashed compaction\n")
        wal = WriteAheadLog.create(path, 3)
        wal.close()
        _, records = WriteAheadLog.open(path, generation=3)
        assert records == []

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / wal_filename(0), 0)
        wal.close()
        wal.close()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(WalError, match="cannot read"):
            WriteAheadLog.open(tmp_path / "nope.log")


class TestAppendValidation:
    def test_append_rejects_preset_lsn(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / wal_filename(0), 0)
        with pytest.raises(WalError):
            wal.append({"op": "add", "lsn": 9})
        wal.close()

    def test_append_requires_an_op(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / wal_filename(0), 0)
        with pytest.raises(WalError):
            wal.append({"external_id": 1})
        wal.close()


class TestCrashSemantics:
    """A crash mid-append can only tear the final record; anything else is
    damage and must raise rather than replay a hole."""

    def make_log(self, tmp_path, num_records=3):
        path = tmp_path / wal_filename(0)
        wal = WriteAheadLog.create(path, 0)
        for index in range(num_records):
            wal.append({"op": "add", "external_id": index})
        wal.close()
        return path

    def test_torn_unterminated_tail_is_truncated(self, tmp_path):
        path = self.make_log(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact + b'deadbeef {"op":"add","ext')
        _, records = WriteAheadLog.open(path, generation=0)
        assert len(records) == 3
        assert path.read_bytes() == intact  # the torn bytes are gone
        # and a reopen sees a perfectly clean file
        _, records = WriteAheadLog.open(path, generation=0)
        assert len(records) == 3

    def test_torn_tail_with_bad_checksum_is_truncated(self, tmp_path):
        path = self.make_log(tmp_path)
        intact = path.read_bytes()
        good = encode({"op": "add", "external_id": 9, "lsn": 4})
        path.write_bytes(intact + b"00000000 " + good[9:])
        _, records = WriteAheadLog.open(path, generation=0)
        assert len(records) == 3
        assert path.read_bytes() == intact

    def test_corrupt_record_before_the_tail_raises(self, tmp_path):
        path = self.make_log(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"00000000 " + lines[2][9:]  # break a middle checksum
        path.write_bytes(b"".join(lines))
        with pytest.raises(WalError, match="damaged beyond crash semantics"):
            WriteAheadLog.open(path, generation=0)

    def test_lsn_gap_raises_even_at_the_tail(self, tmp_path):
        path = self.make_log(tmp_path, num_records=2)
        with open(path, "ab") as handle:
            handle.write(encode({"op": "add", "external_id": 9, "lsn": 7}))
        with pytest.raises(WalError, match="records are missing"):
            WriteAheadLog.open(path, generation=0)

    def test_deleted_middle_record_raises(self, tmp_path):
        path = self.make_log(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        del lines[2]
        path.write_bytes(b"".join(lines))
        with pytest.raises(WalError, match="records are missing"):
            WriteAheadLog.open(path, generation=0)


class TestHeaderValidation:
    def test_generation_mismatch_raises(self, tmp_path):
        path = tmp_path / wal_filename(0)
        WriteAheadLog.create(path, 0).close()
        with pytest.raises(WalError, match="belongs to generation"):
            WriteAheadLog.open(path, generation=5)

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "v.log"
        record = {
            "op": "header",
            "version": WAL_FORMAT_VERSION + 1,
            "generation": 0,
            "lsn": 0,
        }
        path.write_bytes(encode(record))
        with pytest.raises(WalError, match="unsupported WAL format version"):
            WriteAheadLog.open(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "h.log"
        path.write_bytes(encode({"op": "add", "external_id": 0, "lsn": 0}))
        with pytest.raises(WalError, match="no header record"):
            WriteAheadLog.open(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "e.log"
        path.write_bytes(b"")
        with pytest.raises(WalError, match="no header record"):
            WriteAheadLog.open(path)

    def test_wal_error_is_a_catalog_error(self):
        assert issubclass(WalError, CatalogError)
